package ecommerce

import (
	"bytes"
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/des"
	"rejuv/internal/journal"
	"rejuv/internal/sched"
	"rejuv/internal/xrand"
)

func paperDetectorFactory(t *testing.T) func(int) (core.Detector, error) {
	t.Helper()
	return func(int) (core.Detector, error) {
		return core.NewSRAA(core.SRAAConfig{
			SampleSize: 2, Buckets: 5, Depth: 3,
			Baseline: core.Baseline{Mean: 5, StdDev: 5},
		})
	}
}

func TestClusterValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  ClusterConfig
	}{
		{"zero hosts", ClusterConfig{Hosts: 0, ArrivalRate: 1}},
		{"zero arrival rate", ClusterConfig{Hosts: 2}},
		{"negative pause", ClusterConfig{Hosts: 2, ArrivalRate: 1, RejuvenationPause: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewCluster(tt.cfg, nil); err == nil {
				t.Errorf("invalid config accepted: %+v", tt.cfg)
			}
		})
	}
}

func TestClusterConservation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:        3,
		ArrivalRate:  3 * 1.6,
		Transactions: 60_000,
		Seed:         1,
	}, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	var inside int64
	for _, st := range c.stations {
		inside += int64(st.active())
	}
	if res.Arrived != res.Completed+res.Lost+inside {
		t.Fatalf("conservation violated: %d != %d + %d + %d",
			res.Arrived, res.Completed, res.Lost, inside)
	}
	// Per-host counters must add up to the cluster totals.
	var perArrived, perCompleted, perLost, perRejuv int64
	for _, h := range res.PerHost {
		perArrived += h.Arrived
		perCompleted += h.Completed
		perLost += h.Lost
		perRejuv += h.Rejuvenations
	}
	if perArrived != res.Arrived || perCompleted != res.Completed ||
		perLost != res.Lost || perRejuv != res.Rejuvenations {
		t.Fatalf("per-host sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			perArrived, perCompleted, perLost, perRejuv,
			res.Arrived, res.Completed, res.Lost, res.Rejuvenations)
	}
}

func TestClusterLeastActiveBalancesLoad(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:        4,
		ArrivalRate:  4 * 1.0,
		Routing:      RouteLeastActive,
		Transactions: 40_000,
		Seed:         3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := res.Arrived / 4
	for h, r := range res.PerHost {
		if r.Arrived < want*8/10 || r.Arrived > want*12/10 {
			t.Fatalf("host %d received %d arrivals, want ~%d", h, r.Arrived, want)
		}
	}
}

func TestClusterRoundRobinIsExact(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:        3,
		ArrivalRate:  3,
		Routing:      RouteRoundRobin,
		Transactions: 9_000,
		Seed:         5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With no host ever out of service, round robin splits arrivals
	// within one transaction of each other.
	for h := 1; h < 3; h++ {
		diff := res.PerHost[h].Arrived - res.PerHost[0].Arrived
		if diff < -1 || diff > 1 {
			t.Fatalf("round robin skewed: %v", []int64{
				res.PerHost[0].Arrived, res.PerHost[1].Arrived, res.PerHost[2].Arrived})
		}
	}
}

func TestClusterSingleRejuvenationAtATime(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:             3,
		ArrivalRate:       3 * 1.8,
		RejuvenationPause: 30,
		Transactions:      60_000,
		Seed:              7,
	}, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	outOfService := 0
	maxOut := 0
	c.OnRejuvenate = func(float64, int, int) {
		outOfService = 0
		for h := range c.inService {
			if !c.inService[h] {
				outOfService++
			}
		}
		if outOfService > maxOut {
			maxOut = outOfService
		}
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejuvenations == 0 {
		t.Fatal("no rejuvenations happened")
	}
	if maxOut > 1 {
		t.Fatalf("%d hosts out of service at once, want at most 1", maxOut)
	}
}

func TestClusterDeferredRejuvenations(t *testing.T) {
	// At heavy load with a long pause, concurrent triggers must defer.
	c, err := NewCluster(ClusterConfig{
		Hosts:             4,
		ArrivalRate:       4 * 1.8,
		RejuvenationPause: 120,
		Transactions:      80_000,
		Seed:              9,
	}, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejuvenations == 0 {
		t.Fatal("no rejuvenations")
	}
	if res.Deferred == 0 {
		t.Fatal("expected at least one deferred rejuvenation under these conditions")
	}
}

func TestClusterInstantRejuvenationNeverDefers(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:        2,
		ArrivalRate:  2 * 1.8,
		Transactions: 40_000,
		Seed:         11,
	}, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferred != 0 {
		t.Fatalf("instantaneous rejuvenation deferred %d times", res.Deferred)
	}
}

func TestClusterDetectorFactoryError(t *testing.T) {
	_, err := NewCluster(ClusterConfig{Hosts: 2, ArrivalRate: 1}, func(int) (core.Detector, error) {
		return core.NewSRAA(core.SRAAConfig{}) // invalid
	})
	if err == nil {
		t.Fatal("factory error not propagated")
	}
}

func TestClusterSingleUse(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Hosts: 1, ArrivalRate: 1, Transactions: 500, Seed: 13}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() ClusterResult {
		c, err := NewCluster(ClusterConfig{
			Hosts:        2,
			ArrivalRate:  2.4,
			Transactions: 20_000,
			Seed:         15,
		}, paperDetectorFactory(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Lost != b.Lost || a.AvgRT() != b.AvgRT() {
		t.Fatal("identical cluster runs diverged")
	}
}

func TestStationPartialRejuvenation(t *testing.T) {
	cfg := Config{ArrivalRate: 1}.Default()
	st := newStation(cfg, des.New(), xrand.NewStream(1, 0), func(*job, float64) {})
	st.virtualAge = 100
	st.heapMB = cfg.HeapMB - 1000
	if killed := st.rejuvenatePartial(0.25, 5); killed != 0 {
		t.Fatalf("partial action killed %d transactions", killed)
	}
	if st.virtualAge != 75 {
		t.Errorf("virtual age = %v, want 75 (rolled back by rho)", st.virtualAge)
	}
	if st.heapMB != cfg.HeapMB-750 {
		t.Errorf("heap = %v, want %v (rho of the consumed heap restored)", st.heapMB, cfg.HeapMB-750)
	}
	// A larger rho rolls back more: the conformance monotonicity law in
	// miniature.
	st2 := newStation(cfg, des.New(), xrand.NewStream(1, 0), func(*job, float64) {})
	st2.virtualAge = 100
	st2.heapMB = cfg.HeapMB - 1000
	st2.rejuvenatePartial(0.5, 10)
	if st2.virtualAge >= st.virtualAge || st2.heapMB <= st.heapMB {
		t.Errorf("rho 0.5 (age %v, heap %v) not strictly better than rho 0.25 (age %v, heap %v)",
			st2.virtualAge, st2.heapMB, st.virtualAge, st.heapMB)
	}
	// rho >= 1 degenerates to the full routine: good as new.
	st.rejuvenatePartial(1, 0)
	if st.virtualAge != 0 || st.heapMB != cfg.HeapMB {
		t.Errorf("full action left age %v heap %v", st.virtualAge, st.heapMB)
	}
}

// scheduledClusterConfig is the tiered, deadline-aware policy the
// scheduler tests run: LeakyGC aging so partial heap restoration has a
// measurable benefit, proactive requests so sub-trigger levels map to
// partial tiers.
func scheduledClusterConfig(sc *sched.Config) ClusterConfig {
	return ClusterConfig{
		Hosts:             4,
		ArrivalRate:       4 * 1.6,
		Host:              Config{LeakyGC: true},
		RejuvenationPause: 30,
		Scheduler:         sc,
		ProactiveLevel:    3,
		DeadlineAware:     true,
		Transactions:      60_000,
		Seed:              21,
	}
}

func TestClusterScheduledPartialBeatsFullRestart(t *testing.T) {
	run := func(sc *sched.Config, proactive int) ClusterResult {
		cfg := scheduledClusterConfig(sc)
		cfg.ProactiveLevel = proactive
		c, err := NewCluster(cfg, paperDetectorFactory(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if m := c.MaxDownSeen(); m > 1 {
			t.Fatalf("capacity budget violated: %d hosts down at once", m)
		}
		return res
	}
	full := run(nil, 0) // legacy one-down full restarts, reactive only
	sc := sched.Scheduled(4, 30)
	part := run(&sc, 3)
	if part.Partial == 0 {
		t.Fatal("tiered policy executed no partial actions")
	}
	if part.Lost >= full.Lost {
		t.Fatalf("scheduled partial rejuvenation lost %d transactions, full restarts lost %d — no benefit",
			part.Lost, full.Lost)
	}
}

func TestClusterDeadlineAwareDefers(t *testing.T) {
	sc := sched.Scheduled(4, 30)
	cfg := scheduledClusterConfig(&sc)
	c, err := NewCluster(cfg, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	deadlineDefers := 0
	c.OnTransition = func(tr sched.Transition) {
		if tr.Op == sched.OpDefer && tr.Reason == sched.ReasonDeadline {
			deadlineDefers++
		}
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if deadlineDefers == 0 {
		t.Fatal("deadline-aware cluster never deferred on a QoS horizon")
	}
}

func TestClusterJournalReplaysIdentically(t *testing.T) {
	sc := sched.Scheduled(4, 30)
	cfg := scheduledClusterConfig(&sc)
	c, err := NewCluster(cfg, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "cluster_test"})
	c.Journal(jw)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := journal.ReplaySched(jr, c.SchedulerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("cluster scheduler journal does not replay: %+v", rep.Mismatch)
	}
	if rep.Starts == 0 {
		t.Fatal("journal recorded no dispatches")
	}
	for grp, d := range rep.MaxDownSeen {
		if d > 1 {
			t.Fatalf("replayed governor saw %d down in group %d, budget is 1", d, grp)
		}
	}
	st := c.SchedulerStats()
	if uint64(rep.Starts) != st.Starts || uint64(rep.Quarantines) != st.Quarantines {
		t.Errorf("replay census (%d starts) disagrees with governor stats (%d)", rep.Starts, st.Starts)
	}
}

func TestClusterRejectsMismatchedScheduler(t *testing.T) {
	sc := sched.Scheduled(3, 30) // 3 replicas, 4 hosts
	cfg := scheduledClusterConfig(&sc)
	if _, err := NewCluster(cfg, nil); err == nil {
		t.Fatal("scheduler sized for 3 replicas accepted by a 4-host cluster")
	}
}

func TestClusterVirtualAgeAccounting(t *testing.T) {
	sc := sched.Scheduled(4, 30)
	cfg := scheduledClusterConfig(&sc)
	c, err := NewCluster(cfg, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < cfg.Hosts; h++ {
		if age := c.VirtualAge(h); age < 0 {
			t.Fatalf("host %d virtual age %v negative", h, age)
		}
	}
	if c.VirtualAge(-1) != 0 || c.VirtualAge(99) != 0 {
		t.Error("out-of-range virtual age not zero")
	}
}
