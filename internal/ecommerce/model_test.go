package ecommerce

import (
	"math"
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/mmc"
	"rejuv/internal/stats"
)

func pureConfig(lambda float64, txns int64, stream uint64) Config {
	return Config{
		ArrivalRate:     lambda,
		Transactions:    txns,
		DisableOverhead: true,
		DisableGC:       true,
		Seed:            1,
		Stream:          stream,
	}
}

func TestDefaultsArePaperValues(t *testing.T) {
	cfg := Config{ArrivalRate: 1}.Default()
	if cfg.Servers != 16 || cfg.ServiceRate != 0.2 || cfg.OverheadThreshold != 50 ||
		cfg.OverheadFactor != 2.0 || cfg.HeapMB != 3072 || cfg.AllocMB != 10 ||
		cfg.GCThresholdMB != 100 || cfg.GCPause != 60 || cfg.Transactions != 100_000 {
		t.Fatalf("defaults = %+v do not match the paper's Section 3", cfg)
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero arrival rate", Config{}},
		{"negative arrival rate", Config{ArrivalRate: -1}},
		{"NaN arrival rate", Config{ArrivalRate: math.NaN()}},
		{"overhead factor below 1", Config{ArrivalRate: 1, OverheadFactor: 0.5}},
		{"heap below threshold", Config{ArrivalRate: 1, HeapMB: 50, GCThresholdMB: 100}},
		{"negative GC pause", Config{ArrivalRate: 1, GCPause: -1}},
		{"negative rejuvenation pause", Config{ArrivalRate: 1, RejuvenationPause: -1}},
		{"negative transactions", Config{ArrivalRate: 1, Transactions: -5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg, nil); err == nil {
				t.Errorf("invalid config accepted: %+v", tt.cfg)
			}
		})
	}
}

func TestPureModeMatchesMMcAnalytics(t *testing.T) {
	// With overhead, GC, and rejuvenation disabled, the model is an
	// M/M/16 queue; its response-time mean and standard deviation must
	// match eq. (2) and (3).
	sys, err := mmc.New(16, 1.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var pooled stats.Welford
	for rep := uint64(1); rep <= 3; rep++ {
		m, err := New(pureConfig(1.6, 100_000, rep), nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		pooled.Merge(res.RT)
	}
	if math.Abs(pooled.Mean()-sys.RTMean())/sys.RTMean() > 0.01 {
		t.Errorf("simulated mean %v, analytic %v", pooled.Mean(), sys.RTMean())
	}
	if math.Abs(pooled.StdDev()-sys.RTStdDev())/sys.RTStdDev() > 0.02 {
		t.Errorf("simulated sd %v, analytic %v", pooled.StdDev(), sys.RTStdDev())
	}
}

func TestPureModeCDFMatchesEq1(t *testing.T) {
	sys, err := mmc.New(16, 1.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(pureConfig(1.6, 200_000, 9), nil)
	if err != nil {
		t.Fatal(err)
	}
	points := []float64{2, 5, 10, 20}
	counts := make([]int64, len(points))
	var total int64
	m.OnComplete = func(rt float64) {
		total++
		for i, x := range points {
			if rt <= x {
				counts[i]++
			}
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, x := range points {
		emp := float64(counts[i]) / float64(total)
		if want := sys.RTCDF(x); math.Abs(emp-want) > 0.005 {
			t.Errorf("CDF(%v): empirical %v, eq.1 %v", x, emp, want)
		}
	}
}

func TestConservationOfTransactions(t *testing.T) {
	det, err := core.NewSRAA(core.SRAAConfig{
		SampleSize: 2, Buckets: 2, Depth: 2, Baseline: core.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{ArrivalRate: 1.8, Transactions: 50_000, Seed: 3, Stream: 1}, det)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Lost < 50_000 {
		t.Fatalf("run ended with %d done, want >= 50000", res.Completed+res.Lost)
	}
	// Everything that arrived either finished, died, or is still inside.
	inside := int64(m.st.active())
	if res.Arrived != res.Completed+res.Lost+inside {
		t.Fatalf("conservation violated: arrived %d != completed %d + lost %d + inside %d",
			res.Arrived, res.Completed, res.Lost, inside)
	}
	if int64(res.RT.N()) != res.Completed {
		t.Fatalf("RT accumulator has %d samples, want %d", res.RT.N(), res.Completed)
	}
}

func TestGCFrequencyMatchesHeapArithmetic(t *testing.T) {
	// Without rejuvenation, one GC happens every
	// floor((heap - threshold)/alloc) + 1 = 298 service starts.
	m, err := New(Config{
		ArrivalRate:     0.5,
		Transactions:    50_000,
		DisableOverhead: true,
		Seed:            5,
		Stream:          1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	perCycle := int64((3072-100)/10) + 1
	want := res.Completed / perCycle
	if res.GCs < want-2 || res.GCs > want+2 {
		t.Fatalf("GCs = %d, want ~%d (one per %d transactions)", res.GCs, want, perCycle)
	}
}

func TestGCStallsDelayRunningThreads(t *testing.T) {
	// Every transaction that is running when a GC starts must be
	// delayed by at least the pause; verify the max RT at low load
	// reflects the 60 s stall.
	m, err := New(Config{
		ArrivalRate:     0.2,
		Transactions:    5_000,
		DisableOverhead: true,
		Seed:            7,
		Stream:          1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.GCs == 0 {
		t.Fatal("no GCs at all")
	}
	if res.RT.Max() < 60 {
		t.Fatalf("max RT %v < GC pause; stalls not applied", res.RT.Max())
	}
	// Mean must sit slightly above the pure-M/M/c 5 s because stalls
	// are rare but heavy.
	if res.AvgRT() < 5 || res.AvgRT() > 8 {
		t.Fatalf("avg RT %v outside the expected low-load band", res.AvgRT())
	}
}

func TestDisableGCRemovesStalls(t *testing.T) {
	m, err := New(pureConfig(0.2, 5_000, 11), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.GCs != 0 {
		t.Fatalf("GCs = %d with GC disabled", res.GCs)
	}
}

func TestRejuvenationKillsBacklogAndCountsLoss(t *testing.T) {
	var killed []int
	det, err := core.NewCLTA(core.CLTAConfig{
		SampleSize: 10, Quantile: 1.96, Baseline: core.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{ArrivalRate: 1.8, Transactions: 30_000, Seed: 13, Stream: 1}, det)
	if err != nil {
		t.Fatal(err)
	}
	m.OnRejuvenate = func(_ float64, k int) { killed = append(killed, k) }
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejuvenations == 0 {
		t.Fatal("no rejuvenations at high load with an aggressive detector")
	}
	if int64(len(killed)) != res.Rejuvenations {
		t.Fatalf("%d callbacks for %d rejuvenations", len(killed), res.Rejuvenations)
	}
	total := int64(0)
	for _, k := range killed {
		total += int64(k)
	}
	if total != res.Lost {
		t.Fatalf("callbacks reported %d kills, result says %d", total, res.Lost)
	}
	if res.LossFraction() <= 0 || res.LossFraction() >= 1 {
		t.Fatalf("loss fraction %v out of range", res.LossFraction())
	}
}

func TestRejuvenationResetsHeap(t *testing.T) {
	det, err := core.NewSRAA(core.SRAAConfig{
		SampleSize: 1, Buckets: 1, Depth: 1, Baseline: core.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{ArrivalRate: 1.0, Transactions: 20_000, Seed: 17, Stream: 1}, det)
	if err != nil {
		t.Fatal(err)
	}
	heapChecked := false
	m.OnRejuvenate = func(float64, int) {
		if m.st.heapMB != m.cfg.HeapMB {
			t.Errorf("heap %v after rejuvenation, want %v", m.st.heapMB, m.cfg.HeapMB)
		}
		if m.st.active() != 0 {
			t.Errorf("%d threads alive after rejuvenation", m.st.active())
		}
		if m.st.freeCPUs != m.cfg.Servers {
			t.Errorf("%d CPUs free after rejuvenation, want %d", m.st.freeCPUs, m.cfg.Servers)
		}
		heapChecked = true
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !heapChecked {
		t.Fatal("no rejuvenation happened; test proved nothing")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Result {
		det, err := core.NewSRAA(core.SRAAConfig{
			SampleSize: 2, Buckets: 3, Depth: 2, Baseline: core.Baseline{Mean: 5, StdDev: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{ArrivalRate: 1.6, Transactions: 20_000, Seed: 19, Stream: 4}, det)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Lost != b.Lost || a.GCs != b.GCs ||
		a.Rejuvenations != b.Rejuvenations || a.AvgRT() != b.AvgRT() || a.SimTime != b.SimTime {
		t.Fatalf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestDifferentStreamsDiffer(t *testing.T) {
	run := func(stream uint64) Result {
		m, err := New(pureConfig(1.6, 10_000, stream), nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run(1).AvgRT() == run(2).AvgRT() {
		t.Fatal("distinct streams produced identical results")
	}
}

func TestModelIsSingleUse(t *testing.T) {
	m, err := New(pureConfig(1, 1_000, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestRejuvenationPauseDelaysService(t *testing.T) {
	// With a large rejuvenation pause, the same trigger pattern must
	// yield a strictly worse average response time than the
	// instantaneous variant, since arrivals wait out the pause.
	run := func(pause float64) Result {
		det, err := core.NewSRAA(core.SRAAConfig{
			SampleSize: 1, Buckets: 1, Depth: 1, Baseline: core.Baseline{Mean: 5, StdDev: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{
			ArrivalRate:       1.6,
			Transactions:      20_000,
			RejuvenationPause: pause,
			Seed:              23,
			Stream:            2,
		}, det)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejuvenations == 0 {
			t.Fatal("no rejuvenations; pause comparison is vacuous")
		}
		return res
	}
	instant := run(0)
	paused := run(45)
	if paused.AvgRT() <= instant.AvgRT() {
		t.Fatalf("pause 45 s gave avg RT %v, instantaneous %v; expected worse",
			paused.AvgRT(), instant.AvgRT())
	}
}

func TestOverheadDoublesServiceUnderBacklog(t *testing.T) {
	// Compare mean RT with and without overhead at a load where GC
	// stalls routinely push the backlog past 50 threads.
	run := func(disable bool) Result {
		m, err := New(Config{
			ArrivalRate:     1.8,
			Transactions:    30_000,
			DisableOverhead: disable,
			Seed:            29,
			Stream:          3,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(false)
	without := run(true)
	if with.AvgRT() <= without.AvgRT() {
		t.Fatalf("overhead on: %v, off: %v; expected overhead to hurt", with.AvgRT(), without.AvgRT())
	}
}

func TestPeriodicRejuvenationFiresOnSchedule(t *testing.T) {
	m, err := New(Config{
		ArrivalRate:          1.0,
		Transactions:         20_000,
		RejuvenationInterval: 500,
		Seed:                 47,
		Stream:               1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	m.OnRejuvenate = func(at float64, _ int) { times = append(times, at) }
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejuvenations == 0 {
		t.Fatal("periodic policy never fired")
	}
	want := int64(res.SimTime / 500)
	if res.Rejuvenations < want-1 || res.Rejuvenations > want+1 {
		t.Fatalf("%d rejuvenations over %.0f s, want ~%d", res.Rejuvenations, res.SimTime, want)
	}
	for i, at := range times {
		if got, want := at, 500*float64(i+1); got != want {
			t.Fatalf("rejuvenation %d at %v, want %v", i, got, want)
		}
	}
}

func TestPeriodicComposesWithDetector(t *testing.T) {
	det, err := core.NewSRAA(core.SRAAConfig{
		SampleSize: 2, Buckets: 5, Depth: 3, Baseline: core.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		ArrivalRate:          1.8,
		Transactions:         30_000,
		RejuvenationInterval: 2_000,
		Seed:                 53,
		Stream:               1,
	}, det)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Detector-driven triggers at this load far outnumber the periodic
	// ones; both must contribute.
	if res.Rejuvenations <= res.GCs/10 {
		t.Fatalf("only %d rejuvenations; composition seems broken", res.Rejuvenations)
	}
}

func TestPeriodicValidation(t *testing.T) {
	if _, err := New(Config{ArrivalRate: 1, RejuvenationInterval: -5}, nil); err == nil {
		t.Fatal("negative interval accepted")
	}
}

func TestPureModeKSAgainstEq1(t *testing.T) {
	// Goodness-of-fit of the whole simulated response-time distribution
	// against eq. (1), not just moments: a one-sample KS test at the 1%
	// level. The response times of an M/M/c system are weakly
	// dependent, which inflates the effective KS statistic slightly, so
	// the sample is thinned to every 20th completion.
	sys, err := mmc.New(16, 1.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(pureConfig(1.6, 200_000, 21), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sample []float64
	var i int
	m.OnComplete = func(rt float64) {
		if i%20 == 0 {
			sample = append(sample, rt)
		}
		i++
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	d, p, ok, err := stats.KSTest(sample, sys.RTCDF, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("simulated RT distribution rejected against eq. (1): D=%v p=%v n=%d",
			d, p, len(sample))
	}
}

func TestServiceDistributionMeansAgree(t *testing.T) {
	// All service distributions share the mean 1/mu, so at low load
	// (no queueing, GC and overhead off) the average response time is
	// ~5 s regardless of the distribution; variability differs.
	var sds []float64
	for _, d := range []ServiceDistribution{ServiceExponential, ServiceErlang2, ServiceHyper2} {
		cfg := pureConfig(0.5, 100_000, 31)
		cfg.ServiceDistribution = d
		m, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.AvgRT()-5)/5 > 0.02 {
			t.Errorf("%s: avg RT %v, want ~5", d, res.AvgRT())
		}
		sds = append(sds, res.RT.StdDev())
	}
	// CVs 1, 0.71, 2 must order the standard deviations as
	// erlang2 < exponential < hyper2.
	if !(sds[1] < sds[0] && sds[0] < sds[2]) {
		t.Fatalf("sd ordering wrong: erlang2=%v exp=%v hyper2=%v", sds[1], sds[0], sds[2])
	}
}

func TestServiceDistributionValidation(t *testing.T) {
	cfg := Config{ArrivalRate: 1, ServiceDistribution: "weibull"}
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("unknown service distribution accepted")
	}
}
