// Package ecommerce implements the simulation model of the paper's
// Section 3: a multi-tier Java e-commerce system reduced to a 16-CPU
// FCFS queue with two aging mechanisms layered on top — kernel overhead
// when more than 50 threads are active, and full-GC stalls when the JVM
// heap runs low — plus a rejuvenation hook driven by a response-time
// detector.
//
// With both mechanisms and rejuvenation disabled the model degenerates
// to a pure M/M/c system, which is how the paper validates the
// analytical results of Section 4.1 and runs its autocorrelation study.
// Cluster extends the model to several hosts behind a router, following
// the cluster systems of the authors' companion work.
package ecommerce

import (
	"fmt"
	"math"

	"rejuv/internal/core"
	"rejuv/internal/des"
	"rejuv/internal/faults"
	"rejuv/internal/journal"
	"rejuv/internal/num"
	"rejuv/internal/stats"
	"rejuv/internal/xrand"
)

// Config parameterizes the model. Zero fields take the paper's values
// via Default; only ArrivalRate has no sensible default.
type Config struct {
	// ArrivalRate is lambda, in transactions/second.
	ArrivalRate float64
	// Servers is c, the number of CPUs (paper: 16).
	Servers int
	// ServiceRate is mu, in transactions/second per CPU (paper: 0.2).
	ServiceRate float64
	// ServiceDistribution selects the CPU processing-time distribution.
	// The paper uses the exponential (the default, empty string);
	// "erlang2" (CV ~0.71) and "hyper2" (CV 2) exist for the
	// distributional-sensitivity ablation, all with the same mean
	// 1/ServiceRate.
	ServiceDistribution ServiceDistribution
	// OverheadThreshold is the number of active threads above which
	// kernel overhead kicks in (paper: 50).
	OverheadThreshold int
	// OverheadFactor multiplies the service time under overhead
	// (paper: 2.0).
	OverheadFactor float64
	// HeapMB is the JVM heap size in MB (paper: 3 GB).
	HeapMB float64
	// AllocMB is the memory allocated per transaction in MB (paper: 10).
	AllocMB float64
	// GCThresholdMB is the remaining-heap level that schedules a full
	// GC (paper: 100).
	GCThresholdMB float64
	// GCPause is the full-GC stall applied to all running threads, in
	// seconds (paper: 60).
	GCPause float64
	// RejuvenationPause takes the system out of service for this many
	// seconds per rejuvenation. The paper's rejuvenation is
	// instantaneous (zero); the ablation benchmarks use this to study
	// how a restart cost changes the picture. Arrivals during the pause
	// queue up and are served afterwards.
	RejuvenationPause float64
	// RejuvenationInterval, when positive, rejuvenates the system every
	// that many seconds of virtual time regardless of observed response
	// times — the classical time-based policy of the rejuvenation
	// literature (Huang et al.), included as a baseline for the paper's
	// measurement-driven algorithms. It composes with a detector: both
	// can trigger.
	RejuvenationInterval float64
	// BurstFactor, BurstOn and BurstOff add an on-off (Markov-modulated)
	// overlay to the Poisson arrival process: during a burst the
	// arrival rate is ArrivalRate*BurstFactor; burst and quiet periods
	// last exponentially distributed times with means BurstOn and
	// BurstOff seconds. A BurstFactor of 0 or 1 disables bursts. The
	// paper's bucket design exists precisely to tolerate such bursts
	// without rejuvenating; the burst experiments exercise that claim.
	BurstFactor float64
	BurstOn     float64
	BurstOff    float64
	// Workload, when non-nil, modulates the arrival rate over virtual
	// time with a deterministic piecewise-constant profile (diurnal
	// cycles, flash crowds, ramps) — legitimate workload movement, as
	// opposed to the stochastic burst overlay. It composes with bursts:
	// both factors multiply.
	Workload *WorkloadShape
	// LeakyGC makes full garbage collections fail to reclaim the heap:
	// the per-transaction allocations are true leaks and only
	// rejuvenation restores capacity. Under this reading of the paper's
	// "memory leaks" the system enters a soft-failure regime (every
	// service start stalls all running threads) once the heap is
	// exhausted, and rejuvenation is the only recovery. The default
	// (false) has full GC restore the heap, which matches the paper's
	// "time needed to perform a full garbage collection" framing; the
	// ablation benchmarks exercise both.
	LeakyGC bool
	// DisableOverhead turns off the kernel-overhead mechanism.
	DisableOverhead bool
	// DisableGC turns off the memory/GC mechanism.
	DisableGC bool
	// Hygiene governs non-finite observations reaching the detector,
	// mirroring the production Monitor's policy. The simulation's own
	// response times are always finite, so this only matters under fault
	// injection (Model.InjectFaults). The zero value rejects.
	Hygiene core.Hygiene
	// Transactions is how many transactions must leave the system
	// (completed or lost) before the replication ends (paper: 100,000).
	Transactions int64
	// Seed and Stream select the random number stream; replications use
	// the same seed with distinct streams.
	Seed   uint64
	Stream uint64
}

// Default returns cfg with every zero field replaced by the paper's
// value for it.
func (cfg Config) Default() Config {
	if cfg.Servers == 0 {
		cfg.Servers = 16
	}
	if num.Zero(cfg.ServiceRate) {
		cfg.ServiceRate = 0.2
	}
	if cfg.OverheadThreshold == 0 {
		cfg.OverheadThreshold = 50
	}
	if num.Zero(cfg.OverheadFactor) {
		cfg.OverheadFactor = 2.0
	}
	if num.Zero(cfg.HeapMB) {
		cfg.HeapMB = 3072
	}
	if num.Zero(cfg.AllocMB) {
		cfg.AllocMB = 10
	}
	if num.Zero(cfg.GCThresholdMB) {
		cfg.GCThresholdMB = 100
	}
	if num.Zero(cfg.GCPause) {
		cfg.GCPause = 60
	}
	if cfg.Transactions == 0 {
		cfg.Transactions = 100_000
	}
	return cfg
}

// Validate reports whether the (defaulted) configuration is usable.
func (cfg Config) Validate() error {
	switch {
	case cfg.ArrivalRate <= 0 || math.IsNaN(cfg.ArrivalRate) || math.IsInf(cfg.ArrivalRate, 0):
		return fmt.Errorf("ecommerce: arrival rate must be positive and finite, got %v", cfg.ArrivalRate)
	case cfg.Servers <= 0:
		return fmt.Errorf("ecommerce: need at least one server, got %d", cfg.Servers)
	case cfg.ServiceRate <= 0:
		return fmt.Errorf("ecommerce: service rate must be positive, got %v", cfg.ServiceRate)
	case cfg.OverheadFactor < 1:
		return fmt.Errorf("ecommerce: overhead factor must be >= 1, got %v", cfg.OverheadFactor)
	case cfg.AllocMB <= 0 || cfg.HeapMB <= cfg.GCThresholdMB:
		return fmt.Errorf("ecommerce: heap %v MB must exceed GC threshold %v MB and allocation %v MB must be positive",
			cfg.HeapMB, cfg.GCThresholdMB, cfg.AllocMB)
	case cfg.GCPause < 0:
		return fmt.Errorf("ecommerce: GC pause must be non-negative, got %v", cfg.GCPause)
	case cfg.RejuvenationPause < 0:
		return fmt.Errorf("ecommerce: rejuvenation pause must be non-negative, got %v", cfg.RejuvenationPause)
	case cfg.BurstFactor < 0 || (cfg.BurstFactor > 1 && (cfg.BurstOn <= 0 || cfg.BurstOff <= 0)):
		return fmt.Errorf("ecommerce: bursts need factor >= 1 and positive on/off durations, got factor=%v on=%v off=%v",
			cfg.BurstFactor, cfg.BurstOn, cfg.BurstOff)
	case cfg.BurstFactor > 0 && cfg.BurstFactor < 1:
		return fmt.Errorf("ecommerce: burst factor %v below 1 would model a lull, not a burst", cfg.BurstFactor)
	case cfg.RejuvenationInterval < 0 || math.IsNaN(cfg.RejuvenationInterval):
		return fmt.Errorf("ecommerce: rejuvenation interval must be non-negative, got %v", cfg.RejuvenationInterval)
	case cfg.Transactions <= 0:
		return fmt.Errorf("ecommerce: transactions must be positive, got %d", cfg.Transactions)
	}
	if _, err := cfg.ServiceDistribution.sampler(cfg.ServiceRate); err != nil {
		return err
	}
	if cfg.Workload != nil {
		if err := cfg.Workload.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// job is one transaction moving through the system.
type job struct {
	arrival    float64
	completion *des.Event // nil while queued
	slot       int        // index in station.running, -1 while queued
	host       int        // cluster host index, 0 on a single host
}

// Result aggregates one replication.
type Result struct {
	// Arrived counts transactions that entered the system.
	Arrived int64
	// Completed counts transactions that finished service.
	Completed int64
	// Lost counts transactions killed by rejuvenation.
	Lost int64
	// Rejuvenations counts rejuvenation events.
	Rejuvenations int64
	// Rebaselines counts workload-shift rebaselines the detector
	// committed (zero unless the detector is a core.Rebaseliner).
	Rebaselines int64
	// GCs counts full garbage collections.
	GCs int64
	// RT accumulates the response times of completed transactions.
	RT stats.Welford
	// Injected counts faults injected into the detector's observation
	// stream (zero without Model.InjectFaults).
	Injected int64
	// Rejected counts non-finite observations intercepted by the hygiene
	// policy before the detector.
	Rejected int64
	// SimTime is the virtual time at which the replication ended.
	SimTime float64
}

// AvgRT returns the mean response time of completed transactions.
func (r Result) AvgRT() float64 { return r.RT.Mean() }

// LossFraction returns lost / (lost + completed), the paper's
// rejuvenation cost metric.
func (r Result) LossFraction() float64 {
	done := r.Completed + r.Lost
	if done == 0 {
		return 0
	}
	return float64(r.Lost) / float64(done)
}

// Model is one replication of the Section-3 system. Build with New, run
// with Run. A model is single-use: Run may be called once.
type Model struct {
	cfg      Config
	sim      *des.Simulator
	rng      *xrand.Rand
	detector core.Detector // nil disables rejuvenation
	st       *station

	// paused is true while a non-zero RejuvenationPause is in progress;
	// arrivals queue but nothing is served. pauseEnd is the pending
	// un-pause event so that a second rejuvenation during a pause
	// extends the outage instead of ending it early.
	paused   bool
	pauseEnd *des.Event
	// bursting is true while the on-off arrival overlay is in its
	// high-rate phase; nextArrival is the pending arrival event, which
	// toggles reschedule (valid because the exponential inter-arrival
	// time is memoryless, this resampling is exactly the Markov-
	// modulated Poisson process).
	bursting    bool
	nextArrival *des.Event
	// wlFactor is the active workload-shape rate factor (1 without a
	// shape); wlIdx is the active phase index.
	wlFactor float64
	wlIdx    int
	// reb is non-nil when the detector re-estimates its baseline; lastReb
	// detects newly committed rebaselines after each observation.
	reb     core.Rebaseliner
	lastReb uint64

	res Result
	ran bool

	// met is nil unless Instrument was called; ticks holds the periodic
	// callbacks registered via Tick, armed when Run starts.
	met   *modelMetrics
	ticks []tick

	// jw is nil unless Journal was called.
	jw *journal.Writer

	// inj is nil unless InjectFaults was called; lastAdmitted backs the
	// HygieneClamp substitution, mirroring the production Monitor.
	inj          *faults.Injector
	lastAdmitted float64
	haveAdmitted bool

	// OnComplete, when non-nil, receives the response time of every
	// completed transaction; the autocorrelation study uses it to
	// record the full series.
	OnComplete func(rt float64)
	// OnRejuvenate, when non-nil, is called after every rejuvenation
	// with the number of transactions it killed.
	OnRejuvenate func(simTime float64, killed int)
}

// New returns a model for the given configuration and detector. A nil
// detector disables rejuvenation entirely (the implicit baseline of the
// paper's figures).
func New(cfg Config, detector core.Detector) (*Model, error) {
	cfg = cfg.Default()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cfg:      cfg,
		sim:      des.New(),
		rng:      xrand.NewStream(cfg.Seed, cfg.Stream),
		detector: detector,
		wlFactor: 1,
	}
	m.reb, _ = detector.(core.Rebaseliner)
	m.st = newStation(cfg, m.sim, m.rng, m.complete)
	return m, nil
}

// Config returns the defaulted configuration in use.
func (m *Model) Config() Config { return m.cfg }

// Run executes the replication until cfg.Transactions transactions have
// left the system, and returns the aggregated result.
func (m *Model) Run() (Result, error) {
	if m.ran {
		return Result{}, fmt.Errorf("ecommerce: model already ran; create a new one per replication")
	}
	m.ran = true
	m.scheduleArrival()
	if m.cfg.BurstFactor > 1 {
		m.scheduleBurstToggle()
	}
	if m.cfg.Workload != nil {
		m.applyWorkloadPhase()
	}
	if m.cfg.RejuvenationInterval > 0 {
		m.schedulePeriodicRejuvenation()
	}
	for _, tk := range m.ticks {
		m.scheduleTick(tk)
	}
	m.sim.Run()
	m.res.GCs = m.st.gcCount()
	m.res.SimTime = m.sim.Now()
	return m.res, nil
}

// currentArrivalRate returns the instantaneous lambda, including any
// active burst.
func (m *Model) currentArrivalRate() float64 {
	rate := m.cfg.ArrivalRate * m.wlFactor
	if m.bursting {
		rate *= m.cfg.BurstFactor
	}
	return rate
}

// scheduleArrival schedules the next Poisson arrival at the current rate.
func (m *Model) scheduleArrival() {
	m.nextArrival = m.sim.Schedule(m.rng.Exp(m.currentArrivalRate()),
		func(*des.Simulator) { m.arrive() })
}

// scheduleBurstToggle schedules the end of the current on/off phase.
func (m *Model) scheduleBurstToggle() {
	mean := m.cfg.BurstOff
	if m.bursting {
		mean = m.cfg.BurstOn
	}
	m.sim.Schedule(m.rng.Exp(1/mean), func(*des.Simulator) {
		m.bursting = !m.bursting
		// Resample the pending inter-arrival time at the new rate;
		// memorylessness makes this the exact modulated process.
		if m.nextArrival != nil && m.nextArrival.Pending() {
			m.sim.Cancel(m.nextArrival)
			m.scheduleArrival()
		}
		m.scheduleBurstToggle()
	})
}

// schedulePeriodicRejuvenation arms the classical time-based policy.
func (m *Model) schedulePeriodicRejuvenation() {
	m.sim.Schedule(m.cfg.RejuvenationInterval, func(*des.Simulator) {
		m.rejuvenate()
		m.schedulePeriodicRejuvenation()
	})
}

// arrive is paper step 1: a thread arrives and the next arrival is
// scheduled. During a rejuvenation pause the thread waits in the queue
// without being admitted to a CPU.
func (m *Model) arrive() {
	m.res.Arrived++
	j := &job{arrival: m.sim.Now(), slot: -1}
	if m.paused {
		m.st.queue = append(m.st.queue, j)
		m.st.noteState()
	} else {
		m.st.enqueue(j)
	}
	m.scheduleArrival()
}

// complete is paper step 8: record the response time, feed the detector,
// maybe rejuvenate, and stop the replication when the transaction budget
// is spent.
func (m *Model) complete(_ *job, rt float64) {
	m.res.Completed++
	m.res.RT.Add(rt)
	if m.met != nil {
		m.met.rt.Observe(rt)
	}
	if m.OnComplete != nil {
		m.OnComplete(rt)
	}
	if m.detector != nil {
		if m.inj != nil {
			// The injector may emit zero, one or two observations for this
			// response time; the slice is consumed before the next Apply.
			for _, v := range m.inj.Apply(rt) {
				m.feedDetector(v)
			}
		} else {
			m.feedDetector(rt)
		}
	}
	if m.res.Completed+m.res.Lost >= m.cfg.Transactions {
		m.sim.Stop()
	}
}

// rejuvenate kills every thread in the system, restores the heap and,
// when RejuvenationPause is set, takes the station out of service for
// that long.
func (m *Model) rejuvenate() {
	killed := m.st.rejuvenate()
	m.res.Lost += int64(killed)
	m.res.Rejuvenations++
	if m.met != nil {
		m.met.rejuvenations.Inc()
		m.met.lost.Add(uint64(killed))
	}
	if m.jw != nil {
		m.jw.Rejuvenation(m.sim.Now(), killed)
	}
	if m.detector != nil {
		m.detector.Reset()
		if m.jw != nil {
			m.jw.Reset(m.sim.Now())
		}
		m.publishDetector()
	}
	if m.cfg.RejuvenationPause > 0 {
		m.paused = true
		m.sim.Cancel(m.pauseEnd)
		m.pauseEnd = m.sim.Schedule(m.cfg.RejuvenationPause, func(*des.Simulator) {
			m.paused = false
			m.pauseEnd = nil
			m.st.tryStart()
		})
	}
	if m.OnRejuvenate != nil {
		m.OnRejuvenate(m.sim.Now(), killed)
	}
	if m.res.Completed+m.res.Lost >= m.cfg.Transactions {
		m.sim.Stop()
	}
}
