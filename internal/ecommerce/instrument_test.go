package ecommerce

import (
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/metrics"
	"rejuv/internal/num"
)

// snapValue digs one series out of a registry snapshot.
func snapValue(t *testing.T, reg *metrics.Registry, name string) metrics.SeriesSnapshot {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %s not registered", name)
	return metrics.SeriesSnapshot{}
}

// TestInstrumentedRunMatchesResult runs a degrading replication with the
// registry attached and checks the counters against the authoritative
// Result fields — the metrics layer must report, never perturb.
func TestInstrumentedRunMatchesResult(t *testing.T) {
	det, err := core.NewSRAA(core.SRAAConfig{
		SampleSize: 2, Buckets: 5, Depth: 3,
		Baseline: core.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		ArrivalRate:  1.8, // heavy load: GC stalls and rejuvenations
		Transactions: 20_000,
		Seed:         61,
		Stream:       1,
	}, det)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	m.Instrument(reg)

	var tickTimes []float64
	if err := m.Tick(1_000, func(at float64) { tickTimes = append(tickTimes, at) }); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	if got := snapValue(t, reg, "sim_transactions_completed_total").Value; got != float64(res.Completed) {
		t.Errorf("completed counter = %v, Result says %d", got, res.Completed)
	}
	if got := snapValue(t, reg, "sim_transactions_lost_total").Value; got != float64(res.Lost) {
		t.Errorf("lost counter = %v, Result says %d", got, res.Lost)
	}
	if got := snapValue(t, reg, "sim_rejuvenations_total").Value; got != float64(res.Rejuvenations) {
		t.Errorf("rejuvenation counter = %v, Result says %d", got, res.Rejuvenations)
	}
	if res.Rejuvenations == 0 {
		t.Fatal("scenario produced no rejuvenations; test needs a heavier load")
	}
	if got := snapValue(t, reg, "sim_gc_stalls_total").Value; got != float64(res.GCs) {
		t.Errorf("GC counter = %v, Result says %d", got, res.GCs)
	}

	rt := snapValue(t, reg, "sim_response_time_seconds")
	if rt.Count != uint64(res.Completed) {
		t.Errorf("response-time histogram count = %d, want %d", rt.Count, res.Completed)
	}
	if !num.Eq(rt.Sum, res.RT.Mean()*float64(res.Completed), 1e-6) {
		t.Errorf("histogram sum %v inconsistent with mean %v over %d", rt.Sum, res.RT.Mean(), res.Completed)
	}

	if got := snapValue(t, reg, "des_sim_time_seconds").Value; got > res.SimTime {
		t.Errorf("sim-time gauge %v beyond final time %v", got, res.SimTime)
	}

	// Ticks fired on the virtual-time grid until the run ended.
	if len(tickTimes) == 0 {
		t.Fatal("tick callback never fired")
	}
	for i, at := range tickTimes {
		if want := 1_000 * float64(i+1); !num.Same(at, want) {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	if last := tickTimes[len(tickTimes)-1]; last > res.SimTime {
		t.Errorf("tick at %v after the replication ended at %v", last, res.SimTime)
	}
}

// TestInstrumentationDoesNotPerturbResults pins the core guarantee that
// attaching a registry changes nothing about the simulated trajectory.
func TestInstrumentationDoesNotPerturbResults(t *testing.T) {
	run := func(instrument bool) Result {
		det, err := core.NewSRAA(core.SRAAConfig{
			SampleSize: 2, Buckets: 5, Depth: 3,
			Baseline: core.Baseline{Mean: 5, StdDev: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{
			ArrivalRate:  1.8,
			Transactions: 10_000,
			Seed:         67,
			Stream:       2,
		}, det)
		if err != nil {
			t.Fatal(err)
		}
		if instrument {
			m.Instrument(metrics.NewRegistry())
			if err := m.Tick(500, func(float64) {}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, instrumented := run(false), run(true)
	if plain.Completed != instrumented.Completed ||
		plain.Lost != instrumented.Lost ||
		plain.Rejuvenations != instrumented.Rejuvenations ||
		!num.Same(plain.SimTime, instrumented.SimTime) ||
		!num.Same(plain.RT.Mean(), instrumented.RT.Mean()) {
		t.Fatalf("instrumentation perturbed the run:\nplain:        %+v\ninstrumented: %+v",
			plain, instrumented)
	}
}

// TestTickValidation covers the Tick error paths.
func TestTickValidation(t *testing.T) {
	m, err := New(Config{ArrivalRate: 0.1, Transactions: 10, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(0, func(float64) {}); err == nil {
		t.Error("Tick(0) accepted")
	}
	if err := m.Tick(-1, func(float64) {}); err == nil {
		t.Error("Tick(-1) accepted")
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(1, func(float64) {}); err == nil {
		t.Error("Tick after Run accepted")
	}
}
