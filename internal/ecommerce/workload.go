package ecommerce

import (
	"fmt"
	"math"

	"rejuv/internal/des"
)

// Non-stationary workload shapes: a deterministic piecewise-constant
// profile multiplying the arrival rate over virtual time. Where the
// on-off burst overlay models stochastic arrival bursts the bucket
// design must absorb, a workload shape models legitimate, sustained
// workload movement — diurnal cycles, flash crowds, ramps to a new
// plateau — the regimes the adaptive-baseline layer (core.Rebase) must
// rebaseline through rather than condemn. Phase boundaries resample the
// pending inter-arrival time at the new rate, which by memorylessness
// simulates the piecewise-homogeneous Poisson process exactly.

// WorkloadPhase is one segment of a workload profile.
type WorkloadPhase struct {
	// Duration is the phase length in seconds of virtual time.
	Duration float64
	// Factor multiplies Config.ArrivalRate while the phase is active.
	Factor float64
}

// WorkloadShape is a piecewise-constant arrival-rate profile.
type WorkloadShape struct {
	// Phases run in order from the start of the replication.
	Phases []WorkloadPhase
	// Cycle repeats the profile indefinitely (diurnal cycles). When
	// false, the last phase's factor holds for the rest of the run
	// (flash crowds that dispersed, ramps that reached their plateau).
	Cycle bool
}

// Validate reports whether the shape is usable.
func (w *WorkloadShape) Validate() error {
	if len(w.Phases) == 0 {
		return fmt.Errorf("ecommerce: workload shape needs at least one phase")
	}
	for i, ph := range w.Phases {
		if !(ph.Duration > 0) || math.IsInf(ph.Duration, 0) {
			return fmt.Errorf("ecommerce: workload phase %d duration %v must be positive and finite", i, ph.Duration)
		}
		if !(ph.Factor > 0) || math.IsInf(ph.Factor, 0) {
			return fmt.Errorf("ecommerce: workload phase %d factor %v must be positive and finite", i, ph.Factor)
		}
	}
	return nil
}

// DiurnalWorkload returns a cycling raised-cosine profile: the arrival
// rate swings between ArrivalRate and peak*ArrivalRate once per period
// seconds, discretized into steps equal-length phases — the day/night
// arrival cycle.
func DiurnalWorkload(period, peak float64, steps int) *WorkloadShape {
	if steps < 2 {
		steps = 2
	}
	ph := make([]WorkloadPhase, steps)
	for i := range ph {
		lift := (peak - 1) * (1 - math.Cos(2*math.Pi*(float64(i)+0.5)/float64(steps))) / 2
		ph[i] = WorkloadPhase{Duration: period / float64(steps), Factor: 1 + lift}
	}
	return &WorkloadShape{Phases: ph, Cycle: true}
}

// FlashCrowdWorkload returns a one-shot surge profile: quiet seconds at
// the base rate, dur seconds at factor times the base rate, then the
// base rate for the rest of the run.
func FlashCrowdWorkload(quiet, dur, factor float64) *WorkloadShape {
	return &WorkloadShape{Phases: []WorkloadPhase{
		{Duration: quiet, Factor: 1},
		{Duration: dur, Factor: factor},
		{Duration: quiet, Factor: 1},
	}}
}

// RampPlateauWorkload returns a ramp-then-plateau profile: quiet
// seconds at the base rate, then a linear climb to factor times the
// base rate over ramp seconds (discretized into steps phases), holding
// the plateau for the rest of the run.
func RampPlateauWorkload(quiet, ramp float64, steps int, factor float64) *WorkloadShape {
	if steps < 1 {
		steps = 1
	}
	ph := make([]WorkloadPhase, 0, steps+1)
	ph = append(ph, WorkloadPhase{Duration: quiet, Factor: 1})
	for i := 1; i <= steps; i++ {
		ph = append(ph, WorkloadPhase{
			Duration: ramp / float64(steps),
			Factor:   1 + (factor-1)*float64(i)/float64(steps),
		})
	}
	return &WorkloadShape{Phases: ph}
}

// applyWorkloadPhase enters phase m.wlIdx: it sets the rate factor,
// resamples the pending inter-arrival time at the new rate (exact by
// memorylessness, as with the burst overlay), and schedules the phase
// boundary.
func (m *Model) applyWorkloadPhase() {
	ph := m.cfg.Workload.Phases[m.wlIdx]
	m.wlFactor = ph.Factor
	if m.nextArrival != nil && m.nextArrival.Pending() {
		m.sim.Cancel(m.nextArrival)
		m.scheduleArrival()
	}
	m.sim.Schedule(ph.Duration, func(*des.Simulator) {
		m.wlIdx++
		if m.wlIdx >= len(m.cfg.Workload.Phases) {
			if !m.cfg.Workload.Cycle {
				// The last phase's factor holds for the rest of the run.
				return
			}
			m.wlIdx = 0
		}
		m.applyWorkloadPhase()
	})
}
