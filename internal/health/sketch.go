// Package health is the fleet observability layer: compact summaries
// of where a fleet of monitored streams is aging, cheap enough to
// maintain inside the ingestion hot path and rich enough to answer the
// operator's first three questions — which streams are closest to
// triggering, how is aging distributed across the fleet, and is the
// monitoring pipeline itself healthy.
//
// The package owns the data structures and presentation (the
// Space-Saving sketch, snapshot types, text rendering, the /fleetz
// HTTP handler); the fleet engine owns their maintenance and assembles
// Snapshot values from per-shard state. health deliberately does not
// import the fleet package, so the dependency points one way:
// fleet -> health.
package health

// Sketch is a Space-Saving heavy-hitter summary of aging activity: a
// fixed set of k (stream id, count) pairs where count tallies the
// stream's aging signals (evaluated decisions at a raised bucket level,
// target exceedances, triggers). When a new stream arrives and the
// sketch is full, it replaces the minimum-count entry and inherits its
// count as an overestimate bound (Err), the classic Metwally et al.
// guarantee: any stream with true count greater than total/k is
// retained, and a reported count overestimates the true one by at most
// Err.
//
// The layout is parallel arrays scanned linearly — no map, no append —
// so Update is allocation-free and safe to run inside the fleet
// shard's drain loop under the shard lock. Linear scan over k<=64
// entries is cheaper than a map for the k this sketch is built for,
// and keeps the memory footprint fixed at construction.
//
// A Sketch is not safe for concurrent use; the fleet engine guards
// each shard's sketch with the shard mutex.
type Sketch struct {
	ids   []uint64
	count []uint64
	errs  []uint64
	mean  []float64
	nanos []int64
	n     int
}

// SketchEntry is one retained stream of a sketch.
type SketchEntry struct {
	// ID is the stream id.
	ID uint64
	// Count is the stream's aging-signal tally (an overestimate of the
	// true tally by at most Err).
	Count uint64
	// Err is the overestimation bound inherited from the entry this
	// stream evicted; 0 for streams that entered an unfull sketch.
	Err uint64
	// LastMean is the sample mean of the stream's most recent signal.
	LastMean float64
	// LastNanos is the wall-clock time of that signal, in nanoseconds.
	LastNanos int64
}

// NewSketch returns a sketch retaining up to k streams (minimum 1).
func NewSketch(k int) *Sketch {
	if k < 1 {
		k = 1
	}
	return &Sketch{
		ids:   make([]uint64, k),
		count: make([]uint64, k),
		errs:  make([]uint64, k),
		mean:  make([]float64, k),
		nanos: make([]int64, k),
	}
}

// Update folds one aging signal for a stream into the sketch: a known
// stream's count is bumped, a new stream takes a free slot, and when
// the sketch is full the minimum-count entry is evicted Space-Saving
// style (the newcomer starts at min+1 with Err=min).
//
// Allocation-free; called from the fleet drain loop under the shard
// lock.
func (s *Sketch) Update(id uint64, mean float64, nowNanos int64) {
	min := 0
	for i := 0; i < s.n; i++ {
		if s.ids[i] == id {
			s.count[i]++
			s.mean[i] = mean
			s.nanos[i] = nowNanos
			return
		}
		if s.count[i] < s.count[min] {
			min = i
		}
	}
	if s.n < len(s.ids) {
		i := s.n
		s.n++
		s.ids[i] = id
		s.count[i] = 1
		s.errs[i] = 0
		s.mean[i] = mean
		s.nanos[i] = nowNanos
		return
	}
	s.errs[min] = s.count[min]
	s.count[min]++
	s.ids[min] = id
	s.mean[min] = mean
	s.nanos[min] = nowNanos
}

// Len returns the number of retained streams.
func (s *Sketch) Len() int { return s.n }

// K returns the sketch capacity.
func (s *Sketch) K() int { return len(s.ids) }

// Reset forgets all retained streams, keeping the capacity.
func (s *Sketch) Reset() { s.n = 0 }

// AppendEntries appends the retained entries to dst (in slot order,
// not ranked) and returns the extended slice. Snapshot-path only; the
// caller ranks the combined entries with TopK.
func (s *Sketch) AppendEntries(dst []SketchEntry) []SketchEntry {
	for i := 0; i < s.n; i++ {
		dst = append(dst, SketchEntry{
			ID:        s.ids[i],
			Count:     s.count[i],
			Err:       s.errs[i],
			LastMean:  s.mean[i],
			LastNanos: s.nanos[i],
		})
	}
	return dst
}
