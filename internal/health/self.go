package health

import (
	"runtime"

	"rejuv/internal/metrics"
)

// Self is the monitoring process's own runtime telemetry — the fleet
// engine watching itself. A monitoring subsystem that silently leaks
// or stalls is worse than none: operators trust it precisely when the
// monitored system is in trouble.
type Self struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// HeapAllocMB is the live heap in MiB.
	HeapAllocMB float64 `json:"heap_alloc_mb"`
	// GCPauseMS is the most recent stop-the-world GC pause in
	// milliseconds (0 before the first collection).
	GCPauseMS float64 `json:"gc_pause_ms"`
	// NumGC is the completed GC cycle count.
	NumGC uint32 `json:"num_gc"`
}

// ReadSelf samples the runtime. It calls runtime.ReadMemStats, which
// briefly stops the world — snapshot-path only, never per observation.
func ReadSelf() Self {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	self := Self{
		Goroutines:  runtime.NumGoroutine(),
		HeapAllocMB: float64(ms.HeapAlloc) / (1 << 20),
		NumGC:       ms.NumGC,
	}
	if ms.NumGC > 0 {
		self.GCPauseMS = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e6
	}
	return self
}

// SelfGauges mirrors Self readings into a metrics registry, so the
// engine's own health rides the same scrape path as the fleet's.
type SelfGauges struct {
	goroutines *metrics.Gauge
	heap       *metrics.Gauge
	pause      *metrics.Gauge
	gcs        *metrics.Gauge
}

// InstrumentSelf registers the self-telemetry gauges:
//
//	fleet_self_goroutines    live goroutines
//	fleet_self_heap_mb       live heap in MiB
//	fleet_self_gc_pause_ms   most recent GC pause in milliseconds
//	fleet_self_gc_cycles     completed GC cycles
func InstrumentSelf(reg *metrics.Registry, labels ...metrics.Label) *SelfGauges {
	return &SelfGauges{
		goroutines: reg.Gauge("fleet_self_goroutines", "live goroutines of the monitoring process", labels...),
		heap:       reg.Gauge("fleet_self_heap_mb", "live heap of the monitoring process in MiB", labels...),
		pause:      reg.Gauge("fleet_self_gc_pause_ms", "most recent GC pause in milliseconds", labels...),
		gcs:        reg.Gauge("fleet_self_gc_cycles", "completed GC cycles", labels...),
	}
}

// Update publishes one Self reading into the gauges.
func (g *SelfGauges) Update(s Self) {
	g.goroutines.SetInt(s.Goroutines)
	g.heap.Set(s.HeapAllocMB)
	g.pause.Set(s.GCPauseMS)
	g.gcs.SetInt(int(s.NumGC))
}
