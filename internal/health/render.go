package health

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// printer accumulates the first write error, so the rendering code can
// stay linear instead of checking every Fprintf.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *printer) println(s string) { p.printf("%s\n", s) }

// WriteText renders a snapshot as the human view — the same layout the
// /fleetz?format=text endpoint serves and the rejuvtop CLI redraws.
// Output depends only on the snapshot contents, so goldens stay stable.
func WriteText(w io.Writer, s *Snapshot) error {
	p := &printer{w: w}
	p.printf("fleet health @ %.3fs   streams=%d stalls=%d\n",
		float64(s.NowNanos)/1e9, s.OpenStreams, s.Stalls)
	p.printf("queue %d/%d (dropped %d)   self: %d goroutines, %.1f MiB heap, gc %.2f ms (n=%d)\n",
		s.Queue.Depth, s.Queue.Capacity, s.Queue.Dropped,
		s.Self.Goroutines, s.Self.HeapAllocMB, s.Self.GCPauseMS, s.Self.NumGC)
	if s.Latency != nil {
		p.printf("latency p50=%.4gs p90=%.4gs p99=%.4gs (n=%d)\n",
			s.Latency.P50, s.Latency.P90, s.Latency.P99, s.Latency.Count)
	}

	if len(s.Classes) > 0 {
		p.println("")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		tp := &printer{w: tw}
		tp.println("CLASS\tOPEN\tOBS\tTRIG\tSUPP\tREJ\tREB\tBASE-MEAN\tBASE-SD")
		for i := range s.Classes {
			c := &s.Classes[i]
			base := "-\t-"
			if c.Rebaselined > 0 {
				base = fmt.Sprintf("%.4g\t%.4g", c.BaselineMean, c.BaselineSD)
			}
			tp.printf("%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
				c.Name, c.Open, c.Observations, c.Triggers, c.Suppressed, c.Rejected, c.Rebaselined, base)
		}
		if err := flush(tw, tp); err != nil {
			return err
		}
	}

	if len(s.Levels) > 0 {
		p.println("")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		tp := &printer{w: tw}
		tp.println("LEVEL\tSTREAMS\tMEAN-FILL\tEXEMPLAR")
		for i := range s.Levels {
			lb := &s.Levels[i]
			ex := "-"
			if lb.Exemplar != nil {
				age := float64(s.NowNanos-lb.Exemplar.Nanos) / 1e9
				ex = fmt.Sprintf("stream %d mean=%.4g age=%.1fs", lb.Exemplar.Stream, lb.Exemplar.Value, age)
			}
			tp.printf("%d\t%d\t%.2f\t%s\n", lb.Level, lb.Streams, lb.MeanFill, ex)
		}
		if err := flush(tw, tp); err != nil {
			return err
		}
	}

	if len(s.Top) > 0 {
		p.println("")
		p.println("top aging streams")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		tp := &printer{w: tw}
		tp.println("STREAM\tCLASS\tLVL\tFILL\tCOUNT\tLAST-MEAN\tAGE")
		for i := range s.Top {
			e := &s.Top[i]
			count := fmt.Sprintf("%d", e.Count)
			if e.Err > 0 {
				count = fmt.Sprintf("%d±%d", e.Count, e.Err)
			}
			age := float64(s.NowNanos-e.LastSeenNanos) / 1e9
			tp.printf("%d\t%s\t%d\t%d\t%s\t%.4g\t%.1fs\n",
				e.Stream, e.Class, e.Level, e.Fill, count, e.LastMean, age)
		}
		if err := flush(tw, tp); err != nil {
			return err
		}
	}
	return p.err
}

// flush surfaces the first error of a tabwriter section: a failed
// buffered write, then a failed flush to the underlying writer.
func flush(tw *tabwriter.Writer, tp *printer) error {
	if tp.err != nil {
		return tp.err
	}
	return tw.Flush()
}
