package health

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"rejuv/internal/metrics"
)

// fixtureSnapshot is a fully populated snapshot used by the handler
// and render tests.
func fixtureSnapshot() Snapshot {
	return Snapshot{
		NowNanos:    12_500_000_000,
		OpenStreams: 3,
		Stalls:      1,
		Classes: []ClassHealth{
			{Name: "web-sraa", Open: 2, Observations: 1000, Triggers: 2, Suppressed: 1},
			{Name: "cache-clta", Open: 1, Observations: 400, Rejected: 3},
		},
		Top: []StreamHealth{
			{Stream: 42, Class: "web-sraa", Level: 2, Fill: 1, Count: 37, Err: 2,
				LastMean: 0.0123, LastSeenNanos: 12_000_000_000},
			{Stream: 7, Class: "web-sraa", Level: 1, Fill: 0, Count: 12,
				LastMean: 0.0101, LastSeenNanos: 11_000_000_000},
		},
		Levels: []LevelBucket{
			{Level: 1, Streams: 1, MeanFill: 0,
				Exemplar: &Exemplar{Stream: 7, Value: 0.0101, Nanos: 11_000_000_000}},
			{Level: 2, Streams: 1, MeanFill: 1,
				Exemplar: &Exemplar{Stream: 42, Value: 0.0123, Nanos: 12_000_000_000}},
		},
		Queue: QueueHealth{Depth: 1, Capacity: 1024},
		Self:  Self{Goroutines: 8, HeapAllocMB: 4.5, GCPauseMS: 0.12, NumGC: 3},
	}
}

func TestHandlerServesJSON(t *testing.T) {
	h := NewHandler(HandlerConfig{Snapshot: fixtureSnapshot})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleetz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("response is not a snapshot: %v", err)
	}
	if got.OpenStreams != 3 || len(got.Top) != 2 || got.Top[0].Stream != 42 {
		t.Fatalf("round-tripped snapshot wrong: %+v", got)
	}
	if got.Latency != nil {
		t.Fatalf("no histogram attached, yet latency = %+v", got.Latency)
	}
}

func TestHandlerServesTextWithLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	lat := reg.Histogram("rejuv_observed_metric", "", []float64{0.01, 0.02, 0.04})
	for i := 0; i < 100; i++ {
		lat.Observe(0.015)
	}
	h := NewHandler(HandlerConfig{Snapshot: fixtureSnapshot, Latency: lat})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleetz?format=text", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"fleet health @ 12.500s",
		"streams=3 stalls=1",
		"queue 1/1024",
		"web-sraa",
		"top aging streams",
		"37±2",
		"latency p50=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("text view lacks %q:\n%s", want, body)
		}
	}

	// The JSON view carries the same latency digest.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleetz", nil))
	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Latency == nil || got.Latency.Count != 100 {
		t.Fatalf("latency digest = %+v, want count 100", got.Latency)
	}
	if got.Latency.P50 <= 0.01 || got.Latency.P50 > 0.02 {
		t.Fatalf("p50 = %v, want within (0.01, 0.02]", got.Latency.P50)
	}
}

func TestHandlerEmptyLatencyOmitted(t *testing.T) {
	reg := metrics.NewRegistry()
	lat := reg.Histogram("empty", "", []float64{1})
	h := NewHandler(HandlerConfig{Snapshot: fixtureSnapshot, Latency: lat})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleetz", nil))
	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Latency != nil {
		t.Fatalf("empty histogram produced latency %+v", got.Latency)
	}
}
