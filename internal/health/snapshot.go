package health

import "sort"

// Snapshot is one consistent view of fleet health, assembled by the
// fleet engine from per-shard state and engine counters. It is plain
// data: JSON-encodable for the /fleetz endpoint and the rejuvtop CLI,
// renderable as text by WriteText.
type Snapshot struct {
	// NowNanos is the engine clock reading the snapshot was taken at,
	// in nanoseconds.
	NowNanos int64 `json:"now_nanos"`
	// OpenStreams is the number of streams under monitoring.
	OpenStreams int `json:"open_streams"`
	// Stalls counts staleness-watchdog trips across the fleet's life.
	Stalls uint64 `json:"stalls,omitempty"`
	// Classes holds per-class detection statistics, in class order.
	Classes []ClassHealth `json:"classes,omitempty"`
	// Top ranks the fleet's most-aged streams (deepest bucket level
	// first), merged from the per-shard sketches and truncated to the
	// configured K. Entries carry the Space-Saving count and error
	// bound, so a reader can judge how trustworthy the tally is.
	Top []StreamHealth `json:"top,omitempty"`
	// Levels is the fleet-wide bucket-level histogram: how many streams
	// sit at each detector level right now, with the mean bucket fill
	// and one exemplar per populated level above 0.
	Levels []LevelBucket `json:"levels,omitempty"`
	// Queue describes the trigger delivery queue.
	Queue QueueHealth `json:"queue"`
	// Latency, when present, summarizes the observed-metric histogram
	// the caller attached to the handler (quantiles via
	// metrics.Histogram.Quantile).
	Latency *LatencySummary `json:"latency,omitempty"`
	// Self is the monitoring process's own runtime telemetry.
	Self Self `json:"self"`
}

// ClassHealth is the per-class slice of the fleet's detection counters.
type ClassHealth struct {
	// Name is the stream class name.
	Name string `json:"name"`
	// Open is the number of live streams in the class.
	Open int `json:"open"`
	// Observations, Triggers, Suppressed and Rejected mirror the
	// class-labeled engine counters.
	Observations uint64 `json:"observations"`
	Triggers     uint64 `json:"triggers,omitempty"`
	Suppressed   uint64 `json:"suppressed,omitempty"`
	Rejected     uint64 `json:"rejected,omitempty"`
	// Rebaselined counts committed workload-shift rebaselines across the
	// class's streams (shift-enabled classes only).
	Rebaselined uint64 `json:"rebaselined,omitempty"`
	// BaselineMean and BaselineSD are the (µ, σ) committed by the
	// class's most recent rebaseline — the baseline its thresholds are
	// currently derived from. Zero until the first rebaseline commits.
	BaselineMean float64 `json:"baseline_mean,omitempty"`
	BaselineSD   float64 `json:"baseline_sd,omitempty"`
}

// StreamHealth is one ranked stream of the top-K aging view: sketch
// tallies plus the stream's live detector position, resolved under the
// shard lock at snapshot time so Level and Fill are current, not stale
// sketch-side copies.
type StreamHealth struct {
	// Stream is the stream id.
	Stream uint64 `json:"stream"`
	// Class is the stream's class name.
	Class string `json:"class"`
	// Level and Fill are the stream's bucket position at snapshot time
	// (both 0 for detectors without buckets).
	Level int `json:"level"`
	Fill  int `json:"fill"`
	// Count is the stream's aging-signal tally from the sketch; Err
	// bounds its overestimation (see SketchEntry).
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
	// LastMean is the sample mean of the stream's most recent aging
	// signal; LastSeenNanos its time.
	LastMean      float64 `json:"last_mean"`
	LastSeenNanos int64   `json:"last_seen_nanos"`
}

// LevelBucket is one populated level of the fleet-wide bucket-level
// histogram.
type LevelBucket struct {
	// Level is the detector bucket level.
	Level int `json:"level"`
	// Streams is how many live streams sit at this level.
	Streams int `json:"streams"`
	// MeanFill is the mean ball count of those streams' buckets.
	MeanFill float64 `json:"mean_fill"`
	// Exemplar, when present, is one concrete stream recently evaluated
	// at this level — the thing to grep the journal for.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Exemplar pins one concrete observation to a histogram bucket: the
// stream it came from, the sample mean evaluated, and when.
type Exemplar struct {
	// Stream is the exemplar stream id.
	Stream uint64 `json:"stream"`
	// Value is the evaluated sample mean.
	Value float64 `json:"value"`
	// Nanos is the wall-clock capture time in nanoseconds.
	Nanos int64 `json:"nanos"`
}

// QueueHealth describes the trigger delivery queue.
type QueueHealth struct {
	// Depth is the number of triggers queued at snapshot time.
	Depth int `json:"depth"`
	// Capacity is the queue bound.
	Capacity int `json:"capacity"`
	// Dropped counts triggers lost to a full queue across the fleet's
	// life.
	Dropped uint64 `json:"dropped,omitempty"`
}

// LatencySummary is the quantile digest of an observed-metric
// histogram, in the metric's own unit (seconds for response times).
type LatencySummary struct {
	// Count is the number of observations summarized.
	Count uint64 `json:"count"`
	// P50, P90 and P99 are interpolated bucket quantiles.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// TopK ranks entries by aging severity — bucket level first (a stream
// one overflow from triggering outranks any count), then fill, then
// sketch count, with the stream id as the final tiebreaker so equal
// states rank deterministically — and truncates to k. It sorts in
// place and returns the (possibly shortened) slice.
func TopK(entries []StreamHealth, k int) []StreamHealth {
	sort.Slice(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if a.Level != b.Level {
			return a.Level > b.Level
		}
		if a.Fill != b.Fill {
			return a.Fill > b.Fill
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Stream < b.Stream
	})
	if k >= 0 && len(entries) > k {
		entries = entries[:k]
	}
	return entries
}
