package health

import (
	"encoding/json"
	"math"
	"net/http"

	"rejuv/internal/metrics"
)

// HandlerConfig configures the /fleetz endpoint.
type HandlerConfig struct {
	// Snapshot produces the current fleet health view; required. Wire
	// it to the fleet engine's HealthSnapshot method.
	Snapshot func() Snapshot
	// Latency, when non-nil, is the observed-metric histogram whose
	// quantile digest is folded into each served snapshot (the
	// single-stream Collector's rejuv_observed_metric, or any
	// response-time histogram the caller maintains).
	Latency *metrics.Histogram
}

// NewHandler returns the /fleetz endpoint: JSON by default, the
// WriteText human view with ?format=text.
func NewHandler(cfg HandlerConfig) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := cfg.Snapshot()
		if cfg.Latency != nil {
			snap.Latency = latencySummary(cfg.Latency)
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = WriteText(w, &snap)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}

// latencySummary digests a histogram into the snapshot's quantile
// summary; nil when the histogram is empty or yields non-finite
// estimates (JSON cannot carry NaN).
func latencySummary(h *metrics.Histogram) *LatencySummary {
	n := h.Count()
	if n == 0 {
		return nil
	}
	ls := &LatencySummary{
		Count: n,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if math.IsNaN(ls.P50) || math.IsNaN(ls.P90) || math.IsNaN(ls.P99) {
		return nil
	}
	return ls
}
