package health

import (
	"testing"
)

func TestSketchRetainsHeavyHitters(t *testing.T) {
	s := NewSketch(4)
	// Streams 1..3 are heavy (many signals); 100..119 appear once each.
	for round := 0; round < 50; round++ {
		for id := uint64(1); id <= 3; id++ {
			s.Update(id, 0.5, int64(round))
		}
		s.Update(100+uint64(round%20), 0.1, int64(round))
	}
	entries := s.AppendEntries(nil)
	if len(entries) != 4 {
		t.Fatalf("sketch retains %d entries, want 4", len(entries))
	}
	found := map[uint64]SketchEntry{}
	for _, e := range entries {
		found[e.ID] = e
	}
	for id := uint64(1); id <= 3; id++ {
		e, ok := found[id]
		if !ok {
			t.Fatalf("heavy stream %d evicted: %+v", id, entries)
		}
		// Space-Saving guarantee: reported count >= true count, and the
		// overestimate is bounded by Err.
		if e.Count < 50 {
			t.Errorf("stream %d count %d underestimates true count 50", id, e.Count)
		}
		if e.Count-e.Err > 50 {
			t.Errorf("stream %d count %d - err %d exceeds true count 50", id, e.Count, e.Err)
		}
	}
}

func TestSketchUpdatesLastSignal(t *testing.T) {
	s := NewSketch(2)
	s.Update(7, 0.25, 100)
	s.Update(7, 0.75, 200)
	entries := s.AppendEntries(nil)
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Count != 2 || e.LastMean != 0.75 || e.LastNanos != 200 || e.Err != 0 {
		t.Fatalf("entry = %+v, want count=2 mean=0.75 nanos=200 err=0", e)
	}
}

func TestSketchEvictionInheritsMinCount(t *testing.T) {
	s := NewSketch(2)
	s.Update(1, 0, 0)
	s.Update(1, 0, 0)
	s.Update(2, 0, 0) // min entry, count 1
	s.Update(3, 0, 0) // evicts 2: count becomes 2, err 1
	entries := s.AppendEntries(nil)
	var e3 *SketchEntry
	for i := range entries {
		if entries[i].ID == 3 {
			e3 = &entries[i]
		}
		if entries[i].ID == 2 {
			t.Fatalf("evicted stream 2 still present: %+v", entries)
		}
	}
	if e3 == nil || e3.Count != 2 || e3.Err != 1 {
		t.Fatalf("newcomer entry = %+v, want count=2 err=1", e3)
	}
}

func TestSketchReset(t *testing.T) {
	s := NewSketch(3)
	s.Update(1, 0, 0)
	s.Reset()
	if s.Len() != 0 || len(s.AppendEntries(nil)) != 0 {
		t.Fatal("reset did not clear the sketch")
	}
	if s.K() != 3 {
		t.Fatalf("capacity = %d after reset, want 3", s.K())
	}
}

// TestSketchUpdateDoesNotAllocate pins the hot-path contract: Update
// runs inside the fleet drain loop under the shard lock and must never
// touch the allocator.
func TestSketchUpdateDoesNotAllocate(t *testing.T) {
	s := NewSketch(8)
	id := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		id++
		s.Update(id%16, 0.5, int64(id))
	})
	if allocs != 0 {
		t.Fatalf("Sketch.Update allocates %.1f times per call, want 0", allocs)
	}
}

func TestTopKRanking(t *testing.T) {
	entries := []StreamHealth{
		{Stream: 5, Level: 1, Fill: 2, Count: 10},
		{Stream: 1, Level: 2, Fill: 0, Count: 3},
		{Stream: 9, Level: 1, Fill: 2, Count: 30},
		{Stream: 2, Level: 1, Fill: 2, Count: 30},
		{Stream: 7, Level: 0, Fill: 0, Count: 99},
	}
	top := TopK(entries, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d, want 3", len(top))
	}
	// Level dominates count; within equal (level, fill, count) the lower
	// stream id ranks first for determinism.
	want := []uint64{1, 2, 9}
	for i, w := range want {
		if top[i].Stream != w {
			t.Fatalf("rank %d = stream %d, want %d (got %+v)", i, top[i].Stream, w, top)
		}
	}
}
