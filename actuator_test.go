package rejuv_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rejuv"
)

// virtualClock is a fake time source whose Sleep advances it, so
// backoff schedules run instantly and deterministically in tests.
type virtualClock struct {
	mu  sync.Mutex
	now time.Time
	// slept records every backoff the actuator requested.
	slept []time.Duration
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Sleep(_ context.Context, d time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.slept = append(c.slept, d)
	return nil
}

func TestActuatorValidation(t *testing.T) {
	if _, err := rejuv.NewActuator(rejuv.ActuatorConfig{}); err == nil {
		t.Error("actuator without an action accepted")
	}
	if _, err := rejuv.NewActuator(rejuv.ActuatorConfig{
		Do:      func(context.Context) error { return nil },
		Backoff: -time.Second,
	}); err == nil {
		t.Error("negative backoff accepted")
	}
}

// TestActuatorTransientFailureRecovers is the e2e retry proof: an
// action that fails twice and then succeeds is carried to success by
// the backoff schedule, and the journal records the full timeline.
func TestActuatorTransientFailureRecovers(t *testing.T) {
	clock := &virtualClock{now: time.Unix(0, 0)}
	var buf bytes.Buffer
	jw := rejuv.NewJournalWriter(&buf, rejuv.JournalMeta{CreatedBy: "actuator_test"})
	attempts := 0
	a, err := rejuv.NewActuator(rejuv.ActuatorConfig{
		Do: func(context.Context) error {
			attempts++
			if attempts <= 2 {
				return fmt.Errorf("restart rpc refused (attempt %d)", attempts)
			}
			return nil
		},
		MaxAttempts: 5,
		Backoff:     2 * time.Second,
		MaxBackoff:  10 * time.Second,
		Seed:        42,
		Now:         clock.Now,
		Sleep:       clock.Sleep,
		Journal:     jw,
		Epoch:       time.Unix(0, 0),
		OnGiveUp:    func(error) { t.Error("OnGiveUp ran for a recovering action") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("action ran %d times, want 3", attempts)
	}
	s := a.Stats()
	if s.Executions != 1 || s.Attempts != 3 || s.Retries != 2 || s.Successes != 1 || s.GiveUps != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Backoff grows exponentially with jitter in [d/2, d): first retry
	// in [1s, 2s), second in [2s, 4s).
	if len(clock.slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(clock.slept))
	}
	if d := clock.slept[0]; d < time.Second || d >= 2*time.Second {
		t.Errorf("first backoff %v outside [1s, 2s)", d)
	}
	if d := clock.slept[1]; d < 2*time.Second || d >= 4*time.Second {
		t.Errorf("second backoff %v outside [2s, 4s)", d)
	}

	// The journal carries the retry timeline: act_start, two failed
	// attempts with their backoff, one success.
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	jr, err := rejuv.NewJournalReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := jr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []rejuv.JournalKind
	for _, r := range recs {
		kinds = append(kinds, r.Kind)
	}
	want := []rejuv.JournalKind{
		rejuv.JournalKindActStart,
		rejuv.JournalKindActAttempt, rejuv.JournalKindActAttempt, rejuv.JournalKindActAttempt,
	}
	if len(kinds) != len(want) {
		t.Fatalf("journal kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("journal kinds = %v, want %v", kinds, want)
		}
	}
	if recs[1].OK || !recs[3].OK {
		t.Errorf("attempt outcomes wrong: %+v", recs[1:])
	}
	if recs[1].Backoff <= 0 {
		t.Errorf("failed attempt carries no backoff: %+v", recs[1])
	}
	if !strings.Contains(recs[1].Class, "restart rpc refused") {
		t.Errorf("attempt error text missing: %q", recs[1].Class)
	}
}

// TestActuatorPermanentFailureEscalates is the e2e give-up proof: an
// action that always fails exhausts its attempts, invokes OnGiveUp and
// journals the terminal record.
func TestActuatorPermanentFailureEscalates(t *testing.T) {
	clock := &virtualClock{now: time.Unix(0, 0)}
	var buf bytes.Buffer
	jw := rejuv.NewJournalWriter(&buf, rejuv.JournalMeta{CreatedBy: "actuator_test"})
	permanent := errors.New("supervisor unreachable")
	var escalated error
	reg := rejuv.NewRegistry()
	a, err := rejuv.NewActuator(rejuv.ActuatorConfig{
		Do:          func(context.Context) error { return permanent },
		MaxAttempts: 3,
		Seed:        7,
		Now:         clock.Now,
		Sleep:       clock.Sleep,
		Journal:     jw,
		Epoch:       time.Unix(0, 0),
		OnGiveUp:    func(err error) { escalated = err },
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	execErr := a.Execute(context.Background())
	if !errors.Is(execErr, permanent) {
		t.Fatalf("Execute error %v does not wrap the terminal failure", execErr)
	}
	if !errors.Is(escalated, permanent) {
		t.Fatalf("OnGiveUp received %v, want the terminal error", escalated)
	}
	s := a.Stats()
	if s.GiveUps != 1 || s.Attempts != 3 || s.Successes != 0 {
		t.Fatalf("stats = %+v", s)
	}
	for name, want := range map[string]float64{
		"rejuv_actuator_executions_total": 1,
		"rejuv_actuator_attempts_total":   3,
		"rejuv_actuator_retries_total":    2,
		"rejuv_actuator_giveups_total":    1,
	} {
		if got := collectorValue(t, reg, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	jr, err := rejuv.NewJournalReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := jr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last.Kind != rejuv.JournalKindActGiveUp || last.Attempt != 3 {
		t.Errorf("terminal record = %+v, want act_give_up after 3 attempts", last)
	}
}

// TestActuatorTimeout pins the per-attempt timeout: a hanging action is
// cancelled through its context and counts as a failed attempt.
func TestActuatorTimeout(t *testing.T) {
	a, err := rejuv.NewActuator(rejuv.ActuatorConfig{
		Do: func(ctx context.Context) error {
			<-ctx.Done() // hang until the per-attempt timeout fires
			return ctx.Err()
		},
		Timeout:     10 * time.Millisecond,
		MaxAttempts: 2,
		Backoff:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Execute(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Execute = %v, want deadline exceeded", err)
	}
	if s := a.Stats(); s.Attempts != 2 || s.GiveUps != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestActuatorContextCancellation pins the caller-abort path: a
// cancelled context stops the retry loop without OnGiveUp.
func TestActuatorContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	a, err := rejuv.NewActuator(rejuv.ActuatorConfig{
		Do: func(context.Context) error {
			cancel() // the caller gives up while the attempt fails
			return errors.New("nope")
		},
		MaxAttempts: 5,
		Backoff:     time.Millisecond,
		OnGiveUp:    func(error) { t.Error("OnGiveUp ran on caller cancellation") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Execute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute = %v, want context.Canceled", err)
	}
}

// TestActuatorTriggerCoalesces pins the async path: triggers landing
// while an execution is in flight are absorbed, not queued.
func TestActuatorTriggerCoalesces(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	a, err := rejuv.NewActuator(rejuv.ActuatorConfig{
		Do: func(context.Context) error {
			close(started)
			<-release
			return nil
		},
		MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Trigger(rejuv.Trigger{})
	<-started
	a.Trigger(rejuv.Trigger{}) // coalesced: first execution still running
	a.Trigger(rejuv.Trigger{})
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := a.Stats()
		if s.Executions == 1 && s.Successes == 1 {
			if s.Coalesced != 2 {
				t.Fatalf("coalesced = %d, want 2", s.Coalesced)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("execution did not finish: stats = %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestActuatorDeterministicJitter pins that two actuators with the same
// seed draw identical backoff schedules.
func TestActuatorDeterministicJitter(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		clock := &virtualClock{now: time.Unix(0, 0)}
		a, err := rejuv.NewActuator(rejuv.ActuatorConfig{
			Do:          func(context.Context) error { return errors.New("always") },
			MaxAttempts: 4,
			Seed:        seed,
			Now:         clock.Now,
			Sleep:       clock.Sleep,
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = a.Execute(context.Background())
		return clock.slept
	}
	a, b := schedule(99), schedule(99)
	if len(a) != 3 {
		t.Fatalf("slept %d times, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	if c := schedule(100); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Error("different seeds drew an identical schedule")
	}
}
