// Package rejuv detects software aging by monitoring a customer-affecting
// performance metric — typically response time — and decides when to
// trigger software rejuvenation, implementing the algorithms of
// Avritzer, Bondi, Grottke, Trivedi and Weyuker, "Performance Assurance
// via Software Rejuvenation: Monitoring, Statistics and Algorithms"
// (Proc. DSN 2006).
//
// # Detectors
//
// Three algorithm families from the paper are provided:
//
//   - SRAA — static rejuvenation with averaging: block means of n
//     observations drive a ball-and-bucket counter against targets
//     mean + N*sd; K bucket overflows trigger rejuvenation. With n = 1
//     it is the static algorithm of the authors' earlier work
//     (NewStaticDetector).
//   - SARAA — adds sampling acceleration: targets shrink to
//     mean + N*sd/sqrt(n) and the sample size shrinks as degradation
//     deepens, confirming a developing degradation faster.
//   - CLTA — central-limit-theorem algorithm: a single block mean of a
//     large sample above the normal-quantile target triggers at once.
//
// Classical change-detection charts (Shewhart, EWMA, CUSUM) are included
// for comparison, and Adaptive wraps any of them to learn the baseline
// (mean, sd) online instead of taking it from an SLA.
//
// # Monitoring
//
// Monitor adapts a Detector for concurrent production use: goroutines
// report observations (or time request handlers through the HTTP
// middleware), and a trigger callback fires — subject to a cooldown —
// when the detector calls for rejuvenation.
//
// The monitor is hardened against telemetry that misbehaves: a Hygiene
// policy rejects (or clamps) non-finite observations before they can
// poison the detector, MaxSilence arms a staleness watchdog that flags
// a stream gone quiet, and a panicking OnTrigger callback is isolated
// instead of unwinding through the probe path.
//
// # Fleet monitoring
//
// Fleet scales the same detection pipeline from one stream to hundreds
// of thousands. Detector parameters are declared once per StreamClass;
// streams are opened under a class and observed in batches:
//
//	f, _ := rejuv.NewFleet(rejuv.FleetConfig{Classes: classes, OnTrigger: onTrigger})
//	f.OpenStream(id, "web")
//	f.ObserveBatch(batch) // []StreamObs, partitioned over lock-striped shards
//
// Internally the engine keeps struct-of-arrays detector state in
// lock-striped shards, drains each shard's share of a batch under one
// lock acquisition, and allocates nothing at steady state. All streams
// share one journal (stream-tagged records; ReplayFleetJournal proves
// the decision stream byte-identical against the reference detectors)
// and one metrics registry labeled by class and shard — never by
// stream id, so cardinality stays bounded as the fleet grows. Triggers
// fan into a bounded queue that never blocks ingestion. See DESIGN.md
// §14 for the architecture.
//
// # Actuation
//
// Actuator executes the rejuvenation action itself — the restart RPC
// that can hang, flake or die. Each execution runs up to MaxAttempts
// attempts, every attempt bounded by a per-attempt Timeout, separated
// by capped exponential backoff with deterministic jitter; terminal
// failure escalates through OnGiveUp. Trigger is an OnTrigger-shaped
// asynchronous front end that coalesces triggers arriving while an
// execution is in flight. The full retry timeline is journaled and
// rendered by cmd/rejuvtrace.
//
// # Observability
//
// The package answers not only "should we rejuvenate?" but also "why?".
// The data flows through one pipeline: observations enter a Detector,
// the Monitor turns decisions into triggers, and two optional sinks
// record what happened.
//
//   - A Collector publishes monitor and detector state into a metrics
//     Registry — counters for observations, evaluations, triggers and
//     suppressions, a latency histogram of the observed metric, and
//     gauges for the detector's internals (bucket level and fill,
//     sample size, current target). Registry.Handler serves the whole
//     registry in Prometheus text exposition format (or JSON) from
//     /metrics, so the paper's bucket dynamics are visible on a
//     dashboard in real time.
//   - A TraceLog keeps a bounded ring of TraceEntry records, one per
//     detector evaluation, capturing the inputs behind each decision:
//     the sample mean, the target it was compared against, and the
//     bucket state that resulted. After a trigger fires,
//     TraceLog.TriggerContext returns the evaluations that led up to
//     it — the evidence for the rejuvenation, ready to dump as JSON
//     lines.
//   - A JournalWriter (the flight recorder) appends every observation,
//     decision and control action to a durable event journal.
//     ReplayJournal re-runs a fresh detector over the recorded
//     observations and verifies the decision stream byte-identical,
//     and cmd/rejuvtrace renders timelines, per-phase statistics and
//     diffs from the file.
//
// Detectors expose their internals through the Instrumented interface
// (DetectorInternals); custom detectors can implement it to light up
// the same gauges and trace fields.
//
// # Simulation
//
// Simulate runs the paper's e-commerce system model (Section 3): a
// 16-CPU FCFS queue with kernel-overhead and garbage-collection aging
// and a rejuvenation hook, which is how the algorithms are evaluated.
// The cmd/figures tool regenerates every figure of the paper's
// evaluation on top of it. The simulator plugs into the same
// observability pipeline: cmd/rejuvsim -metrics samples the full
// registry on a virtual-time grid and writes JSON-lines series of
// queue length, heap, GC stalls, detector bucket occupancy and
// rejuvenation counts.
//
// The internal/faults package injects telemetry and actuator failure
// modes deterministically from a seed (NaN and infinite readings,
// frozen gauges, dropped/duplicated/reordered/stalled observations,
// clock skew, slow or failing rejuvenation actions); cmd/rejuvsim
// -faults applies a fault spec to a simulation run, and the
// conformance suite pins every detector family's behaviour under each
// fault class.
package rejuv
