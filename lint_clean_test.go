package rejuv_test

import (
	"testing"

	"rejuv/internal/lint"
)

// TestLintClean runs the full rejuvlint suite over every package of the
// module, in-process, and fails on any finding. This is what keeps the
// determinism and numerical-hygiene rules load-bearing: a PR that
// sneaks time.Now into the simulator or an unsorted map range into a
// results/ writer fails `go test ./...`, not just an optional lint step.
func TestLintClean(t *testing.T) {
	pkgs, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d lint finding(s); reproduce with: go run ./cmd/rejuvlint ./...", len(diags))
	}
}
