package rejuv_test

import (
	"testing"
	"time"

	"rejuv/internal/lint"
)

// TestLintClean runs the full rejuvlint suite over every package of the
// module, in-process, and fails on any finding. This is what keeps the
// determinism and numerical-hygiene rules load-bearing: a PR that
// sneaks time.Now into the simulator or an unsorted map range into a
// results/ writer fails `go test ./...`, not just an optional lint step.
//
// The module is type-checked once and every analyzer — including the
// interprocedural hotpath and lockguard passes, which share one call
// graph — runs over that single load. Phase timings are logged (visible
// under -v) so a slow analyzer shows up as a phase, not a mystery.
func TestLintClean(t *testing.T) {
	start := time.Now()
	pkgs, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	loaded := time.Now()
	tree := lint.NewTree(pkgs)
	cg := tree.CallGraph()
	graphed := time.Now()
	diags := lint.Analyze(tree, lint.Analyzers())
	done := time.Now()
	t.Logf("load+typecheck %v, call graph %v (%d functions, %d unresolved call sites), analyze %v",
		loaded.Sub(start).Round(time.Millisecond),
		graphed.Sub(loaded).Round(time.Millisecond),
		len(cg.Nodes), cg.Unresolved,
		done.Sub(graphed).Round(time.Millisecond))
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d lint finding(s); reproduce with: go run ./cmd/rejuvlint ./...", len(diags))
	}
}
