package rejuv_test

// Integration tests for the command-line tools: each binary is built
// once into a temp dir and driven with fast flags, asserting on its
// output. These protect the CLI surface the documentation promises.

import (
	"context"
	"errors"
	"flag"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"rejuv"
)

// updateGolden regenerates the golden stdout files under testdata/cli
// instead of comparing against them:
//
//	go test -run TestCmd -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/cli golden files")

// assertGolden compares got against testdata/cli/<name>.golden, or
// rewrites the file under -update-golden. Golden tests pin the exact
// output of deterministic CLI surfaces on pinned seeds, so any change —
// intended or not — shows up as a reviewable diff.
func assertGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "cli", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update-golden .): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output diverged from %s.\ngot:\n%s\nwant:\n%s", name, path, got, want)
	}
}

// elapsedRE matches the wall-clock suffix figures prints per figure;
// golden comparisons normalize it because it is the one
// non-deterministic token in the output.
var elapsedRE = regexp.MustCompile(`in [0-9ms.]+s?\)`)

// buildCmds compiles every command once per test binary invocation.
var builtCmds struct {
	dir  string
	err  error
	done bool
}

func cmdPath(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI integration in -short mode")
	}
	if !builtCmds.done {
		builtCmds.done = true
		dir, err := os.MkdirTemp("", "rejuv-cmds")
		if err != nil {
			builtCmds.err = err
		} else {
			builtCmds.dir = dir
			cmd := exec.Command("go", "build", "-o", dir, "./cmd/...")
			cmd.Dir = "."
			if out, err := cmd.CombinedOutput(); err != nil {
				builtCmds.err = err
				t.Logf("go build output:\n%s", out)
			}
		}
	}
	if builtCmds.err != nil {
		t.Fatalf("building commands: %v", builtCmds.err)
	}
	return filepath.Join(builtCmds.dir, name)
}

func runCmd(t *testing.T, name string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(cmdPath(t, name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCmdMMCalc(t *testing.T) {
	out := runCmd(t, "mmcalc", "", "-tails")
	for _, want := range []string{"Wc (P[fewer than c jobs])   = 0.990981", "n= 15: 3.7", "n= 30: 3.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("mmcalc output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdMMCalcChainAndDensity(t *testing.T) {
	out := runCmd(t, "mmcalc", "", "-chain", "-density", "-n", "2", "-x", "5")
	for _, want := range []string{"Fig. 4 chain for X̄2", "4 transient phases", "density="} {
		if !strings.Contains(out, want) {
			t.Errorf("mmcalc -chain output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdRejuvsim(t *testing.T) {
	out := runCmd(t, "rejuvsim", "",
		"-algo", "SARAA", "-n", "2", "-k", "5", "-d", "3",
		"-load", "9", "-reps", "1", "-txns", "5000")
	for _, want := range []string{"SARAA (n=2, K=5, D=3)", "average response time:", "rejuvenations:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rejuvsim output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdFiguresQuick(t *testing.T) {
	dir := t.TempDir()
	out := runCmd(t, "figures", "", "-fig", "16", "-quick", "-out", dir)
	if !strings.Contains(out, "Figure 16") {
		t.Fatalf("figures output missing table:\n%s", out)
	}
	for _, f := range []string{"fig16.csv", "fig16.svg", "fig16.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}

func TestCmdAutocorr(t *testing.T) {
	out := runCmd(t, "autocorr", "", "-reps", "2", "-txns", "20000", "-warmup", "2000")
	if !strings.Contains(out, "significant in") {
		t.Fatalf("autocorr output missing verdict:\n%s", out)
	}
	if !strings.Contains(out, "gamma_1") {
		t.Fatalf("autocorr output missing coefficients:\n%s", out)
	}
}

func TestCmdQuotes(t *testing.T) {
	out := runCmd(t, "quotes", "", "-reps", "1", "-txns", "5000", "-markdown")
	if !strings.Contains(out, "| source | quantity | paper | measured | rel. diff |") {
		t.Fatalf("quotes markdown header missing:\n%s", out)
	}
	if strings.Count(out, "\n|") < 10 {
		t.Fatalf("quotes table too short:\n%s", out)
	}
}

func TestCmdTune(t *testing.T) {
	out := runCmd(t, "tune", "", "-budget", "4", "-reps", "1", "-txns", "4000", "-top", "3")
	for _, want := range []string{"tuning SRAA over 6 candidates", "rank", "worst:"} {
		if !strings.Contains(out, want) {
			t.Errorf("tune output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdRejuvmon(t *testing.T) {
	var input strings.Builder
	for i := 0; i < 50; i++ {
		input.WriteString("0.1\n")
	}
	for i := 0; i < 50; i++ {
		input.WriteString("9.9\n")
	}
	out := runCmd(t, "rejuvmon", input.String(),
		"-algo", "SRAA", "-n", "2", "-k", "2", "-d", "2",
		"-mean", "0.1", "-sd", "0.1", "-cooldown", "0s")
	if !strings.Contains(out, "TRIGGER") {
		t.Fatalf("rejuvmon never triggered on a step stream:\n%s", out)
	}
	if !strings.Contains(out, "100 observations") {
		t.Fatalf("rejuvmon summary missing:\n%s", out)
	}
}

func TestCmdRejuvmonRejectsGarbage(t *testing.T) {
	cmd := exec.Command(cmdPath(t, "rejuvmon"), "-mean", "1", "-sd", "1")
	cmd.Stdin = strings.NewReader("not-a-number\n")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("rejuvmon accepted garbage input:\n%s", out)
	}
}

// TestCmdRejuvtrace records a journal with rejuvsim, then drives every
// rejuvtrace mode against it: the ASCII timeline, the CSV dump, the
// phase statistics, replay verification, and a -diff against a second
// journal recorded with a different detector.
func TestCmdRejuvtrace(t *testing.T) {
	dir := t.TempDir()
	jnlA := filepath.Join(dir, "saraa.jnl")
	jnlB := filepath.Join(dir, "sraa.jnl")
	out := runCmd(t, "rejuvsim", "",
		"-algo", "SARAA", "-n", "2", "-k", "5", "-d", "3",
		"-load", "9", "-reps", "2", "-txns", "5000", "-journal", jnlA)
	if !strings.Contains(out, "journal:") {
		t.Fatalf("rejuvsim did not report the journal:\n%s", out)
	}
	runCmd(t, "rejuvsim", "",
		"-algo", "SRAA", "-n", "2", "-k", "5", "-d", "3",
		"-load", "9", "-reps", "2", "-txns", "5000", "-journal", jnlB)

	timeline := runCmd(t, "rejuvtrace", "", "-window", "6", "-triggers", "2", jnlA)
	for _, want := range []string{
		"SARAA (n=2, K=5, D=3)", "recorded by rejuvsim",
		"trigger #1", "TRIGGER", "first exceedance", "bucket dwell",
		"time from first exceedance to trigger:",
	} {
		if !strings.Contains(timeline, want) {
			t.Errorf("rejuvtrace timeline missing %q:\n%s", want, timeline)
		}
	}

	csv := runCmd(t, "rejuvtrace", "", "-csv", jnlA)
	if !strings.Contains(csv, "trigger,rep,seq,t,sample_mean,target,level,fill,triggered,suppressed") {
		t.Errorf("rejuvtrace -csv missing header:\n%.400s", csv)
	}
	if !strings.Contains(csv, ",true,false") {
		t.Errorf("rejuvtrace -csv has no trigger rows:\n%.400s", csv)
	}

	phases := runCmd(t, "rejuvtrace", "", "-phases", jnlA)
	if !strings.Contains(phases, "phases:") || !strings.Contains(phases, "mean bucket dwell per phase:") {
		t.Errorf("rejuvtrace -phases output:\n%s", phases)
	}

	verify := runCmd(t, "rejuvtrace", "", "-verify", jnlA)
	if !strings.Contains(verify, "byte-identical under replay") {
		t.Fatalf("rejuvtrace -verify did not verify:\n%s", verify)
	}

	// Same seed, different detectors: the decision streams must part
	// ways, and -diff reports it with exit status 1.
	cmd := exec.Command(cmdPath(t, "rejuvtrace"), "-diff", jnlA, jnlB)
	diffOut, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("rejuvtrace -diff of different detectors exited 0:\n%s", diffOut)
	}
	for _, want := range []string{"leading decisions identical", "first divergence at decision ordinal"} {
		if !strings.Contains(string(diffOut), want) {
			t.Errorf("rejuvtrace -diff missing %q:\n%s", want, diffOut)
		}
	}

	// A journal diffed against itself has no divergence and exits 0.
	selfDiff := runCmd(t, "rejuvtrace", "", "-diff", jnlA, jnlA)
	if !strings.Contains(selfDiff, "journals agree on every decision") {
		t.Errorf("rejuvtrace self-diff output:\n%s", selfDiff)
	}
}

// TestCmdRejuvtraceCausality drives the trigger-id correlation end to
// end: a library monitor delivers a trigger whose id the OnTrigger
// callback hands to the actuator, both journal into one file, and
// rejuvtrace -trigger renders the complete observation → decision →
// actuation chain. The id is discovered from the default timeline
// output, the way an operator would.
func TestCmdRejuvtraceCausality(t *testing.T) {
	jnl := filepath.Join(t.TempDir(), "mon.jnl")
	f, err := os.Create(jnl)
	if err != nil {
		t.Fatal(err)
	}
	jw := rejuv.NewJournalWriter(f, rejuv.JournalMeta{CreatedBy: "cmd_integration_test"})
	now := time.Unix(1000, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }

	// First restart attempt fails, the retry succeeds: the chain gets a
	// FAIL attempt with a backoff and an ok attempt.
	fails := 1
	act, err := rejuv.NewActuator(rejuv.ActuatorConfig{
		Do: func(context.Context) error {
			if fails > 0 {
				fails--
				return errors.New("supervisor unreachable")
			}
			return nil
		},
		Backoff: time.Second,
		Now:     clock,
		Sleep:   func(_ context.Context, d time.Duration) error { now = now.Add(d); return nil },
		Journal: jw,
		Epoch:   time.Unix(1000, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := rejuv.NewSRAA(rejuv.SRAAConfig{SampleSize: 2, Buckets: 3, Depth: 2,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector: det,
		Now:      clock,
		Journal:  jw,
		// OnTrigger runs under the monitor lock, so the synchronous
		// ExecuteFor may share the monitor's journal writer.
		OnTrigger: func(tr rejuv.Trigger) {
			_ = act.ExecuteFor(context.Background(), tr.ID)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		m.Observe(50)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	timeline := runCmd(t, "rejuvtrace", "", "-triggers", "1", jnl)
	idMatch := regexp.MustCompile(`trigger #1 .* id=(0x[0-9a-f]+)`).FindStringSubmatch(timeline)
	if idMatch == nil {
		t.Fatalf("timeline carries no trigger id:\n%s", timeline)
	}

	chain := runCmd(t, "rejuvtrace", "", "-trigger", idMatch[1], jnl)
	for _, want := range []string{
		"trigger id " + idMatch[1], "observations (", "value=50",
		"decision:", "TRIGGER", "actuation:", "succeeded after 2 attempt(s)",
		"attempt 1", "FAIL  supervisor unreachable", "retry in", "attempt 2",
	} {
		if !strings.Contains(chain, want) {
			t.Errorf("causality chain missing %q:\n%s", want, chain)
		}
	}

	// An id no record carries is an error, exit status 1.
	cmd := exec.Command(cmdPath(t, "rejuvtrace"), "-trigger", "0xdead", jnl)
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("rejuvtrace -trigger with an absent id exited 0:\n%s", out)
	}
}

// TestCmdRejuvtopGolden renders a pinned /fleetz snapshot through the
// rejuvtop one-shot mode. The fixture carries fixed self-telemetry, so
// the entire text view is pinned byte for byte — the same layout the
// /fleetz?format=text endpoint serves.
func TestCmdRejuvtopGolden(t *testing.T) {
	fixture := filepath.Join("testdata", "cli", "fleetz_snapshot.json")
	assertGolden(t, "rejuvtop", runCmd(t, "rejuvtop", "", "-snapshot", fixture))

	// The '-' stdin path renders the same bytes.
	fix, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "rejuvtop", runCmd(t, "rejuvtop", string(fix), "-snapshot", "-"))
}

// TestCmdRejuvtopLive closes the loop the documentation promises: a
// running Fleet served over HTTP by FleetzHandler, scraped and rendered
// by the rejuvtop binary. Self-telemetry varies run to run, so this
// asserts structure rather than golden bytes.
func TestCmdRejuvtopLive(t *testing.T) {
	f, err := rejuv.NewFleet(rejuv.FleetConfig{
		Classes: []rejuv.StreamClass{{
			Name: "web", Family: rejuv.FamilySRAA,
			SampleSize: 2, Buckets: 3, Depth: 2,
			Baseline: rejuv.Baseline{Mean: 5, StdDev: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for id := rejuv.StreamID(1); id <= 8; id++ {
		if err := f.OpenStream(id, "web"); err != nil {
			t.Fatal(err)
		}
	}
	// Stream 1 ages: six exceedances march it into level 1.
	for i := 0; i < 6; i++ {
		f.ObserveBatch([]rejuv.StreamObs{{Stream: 1, Value: 50}})
	}
	srv := httptest.NewServer(rejuv.FleetzHandler(f, nil))
	defer srv.Close()

	out := runCmd(t, "rejuvtop", "", "-once", "-url", srv.URL)
	for _, want := range []string{"fleet health @", "streams=8", "top aging streams", "web"} {
		if !strings.Contains(out, want) {
			t.Errorf("rejuvtop -url output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdRejuvsimJSONLJournal pins the jsonl codec end to end: rejuvsim
// writes it, rejuvtrace auto-detects and verifies it.
func TestCmdRejuvsimJSONLJournal(t *testing.T) {
	jnl := filepath.Join(t.TempDir(), "run.jsonl")
	runCmd(t, "rejuvsim", "",
		"-algo", "CUSUM", "-quantile", "5", "-weight", "0.5",
		"-load", "9", "-reps", "1", "-txns", "3000",
		"-journal", jnl, "-journal-format", "jsonl")
	head, err := os.ReadFile(jnl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(head), "{") {
		t.Fatalf("jsonl journal does not start with a JSON header: %.80q", head)
	}
	verify := runCmd(t, "rejuvtrace", "", "-verify", jnl)
	if !strings.Contains(verify, "byte-identical under replay") {
		t.Fatalf("rejuvtrace -verify on jsonl journal:\n%s", verify)
	}
}

// TestCmdRejuvsimFleet drives the -fleet mode end to end: synthetic
// streams with a degrading subset, a stream-tagged journal, and the
// built-in replay verification against the reference detectors.
func TestCmdRejuvsimFleet(t *testing.T) {
	jnl := filepath.Join(t.TempDir(), "fleet.rjnl")
	out := runCmd(t, "rejuvsim", "",
		"-fleet", "300", "-fleet-rounds", "120", "-fleet-aging", "0.05",
		"-journal", jnl)
	for _, want := range []string{
		"fleet: 300 streams over 3 classes",
		"15 of 15 aging streams detected",
		"0 spurious",
		"detection latency (rounds after onset):",
		"verifying replay... identical (300 streams",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rejuvsim -fleet output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdRejuvsimShift pins the workload-shift demo end to end: the
// bare-versus-rebased comparison is a pure function of the pinned seed,
// so the whole stdout is golden, and the journal it records round-trips
// through rejuvtrace with the rebaseline events visible in the timeline
// and verified under replay.
func TestCmdRejuvsimShift(t *testing.T) {
	jnl := filepath.Join(t.TempDir(), "shift.rjnl")
	out := runCmd(t, "rejuvsim", "", "-shift", "flash", "-txns", "15000", "-journal", jnl)
	// The journal line carries the temp path; golden everything above it.
	body, _, found := strings.Cut(out, "journal:")
	if !found {
		t.Fatalf("rejuvsim -shift did not report the journal:\n%s", out)
	}
	assertGolden(t, "rejuvsim_shift", body)

	timeline := runCmd(t, "rejuvtrace", "", jnl)
	for _, want := range []string{
		"CLTA (n=25, N=1.96) +shift", "recorded by rejuvsim",
		"rebaselines 1 (workload shifts absorbed without rejuvenating)",
		"rebaseline #1", "baseline -> mean=",
	} {
		if !strings.Contains(timeline, want) {
			t.Errorf("rejuvtrace timeline missing %q:\n%s", want, timeline)
		}
	}

	verify := runCmd(t, "rejuvtrace", "", "-verify", jnl)
	for _, want := range []string{"rebaselines verified: 1", "byte-identical under replay"} {
		if !strings.Contains(verify, want) {
			t.Errorf("rejuvtrace -verify missing %q:\n%s", want, verify)
		}
	}
}

func TestCmdAgingcalc(t *testing.T) {
	out := runCmd(t, "agingcalc", "")
	for _, want := range []string{"mean time to failure", "availability", "cost-optimal rejuvenation rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("agingcalc output missing %q:\n%s", want, out)
		}
	}
}

// Golden stdout tests: the four analytic/tuning CLI surfaces are pure
// functions of their flags (and pinned seeds), so their entire output
// is pinned byte for byte.

func TestCmdMMCalcGolden(t *testing.T) {
	out := runCmd(t, "mmcalc", "", "-tails", "-chain", "-density", "-n", "2,5", "-x", "5")
	assertGolden(t, "mmcalc", out)
}

func TestCmdAgingcalcGolden(t *testing.T) {
	assertGolden(t, "agingcalc", runCmd(t, "agingcalc", ""))
}

// TestCmdTuneGolden pins the full ranking table of a small grid search
// on a pinned seed — an end-to-end check that the sweep pipeline
// (model, detector, replication engine, aggregation) is deterministic,
// since any drift in any pooled statistic reorders or rewrites the
// table.
func TestCmdTuneGolden(t *testing.T) {
	out := runCmd(t, "tune", "", "-budget", "4", "-reps", "2", "-txns", "3000", "-seed", "7", "-top", "5")
	assertGolden(t, "tune", out)
}

// TestCmdFiguresGolden pins figure 16 in quick mode on a pinned seed:
// the stdout table (with the elapsed-time token normalized) and the
// exact bytes of the CSV artifact.
func TestCmdFiguresGolden(t *testing.T) {
	dir := t.TempDir()
	out := runCmd(t, "figures", "", "-fig", "16", "-quick", "-seed", "3", "-out", dir)
	assertGolden(t, "figures_fig16", elapsedRE.ReplaceAllString(out, "in Xs)"))
	csv, err := os.ReadFile(filepath.Join(dir, "fig16.csv"))
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "figures_fig16_csv", string(csv))
}

// TestCmdRejuvsimCluster pins the cost-aware cluster scheduling demo:
// the same aging cluster under always-full-restart and under the
// scheduled partial-rejuvenation policy, with the scheduled run's
// journal replay-verified inside the binary. The whole comparison is a
// pure function of the pinned seed, so stdout above the journal line
// is golden — including the loss improvement and the capacity-budget
// high-water line the acceptance criteria name.
func TestCmdRejuvsimCluster(t *testing.T) {
	jnl := filepath.Join(t.TempDir(), "cluster.rjnl")
	out := runCmd(t, "rejuvsim", "",
		"-cluster", "4", "-load", "5", "-txns", "60000", "-seed", "21", "-leaky-gc",
		"-journal", jnl)
	body, _, found := strings.Cut(out, "journal:")
	if !found {
		t.Fatalf("rejuvsim -cluster did not report the journal:\n%s", out)
	}
	assertGolden(t, "rejuvsim_cluster", body)

	trace := runCmd(t, "rejuvtrace", "", jnl)
	for _, want := range []string{
		"recorded by rejuvsim",
		"scheduler 2344 records",
		"action tiers: medium 35, major 62",
		"deferral reasons: deadline 129, budget 50",
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("rejuvtrace cluster summary missing %q:\n%s", want, trace)
		}
	}
}

// TestExampleClusterGolden pins examples/cluster, which now spells its
// historical one-down/30 s policy as the OneDownPolicy scheduler
// preset: the printed comparison must stay semantically identical to
// the hardcoded-policy era (same fields, same seed-pinned numbers).
func TestExampleClusterGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example build in -short mode")
	}
	cmd := exec.Command("go", "run", "./examples/cluster")
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/cluster: %v\n%s", err, out)
	}
	assertGolden(t, "example_cluster", string(out))
}
