package rejuv_test

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rejuv"
)

func testDetector(t *testing.T) rejuv.Detector {
	t.Helper()
	det, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 1, Buckets: 1, Depth: 1,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestMonitorValidation(t *testing.T) {
	noop := func(rejuv.Trigger) {}
	if _, err := rejuv.NewMonitor(rejuv.MonitorConfig{OnTrigger: noop}); err == nil {
		t.Error("monitor without detector accepted")
	}
	if _, err := rejuv.NewMonitor(rejuv.MonitorConfig{Detector: testDetector(t)}); err == nil {
		t.Error("monitor without callback accepted")
	}
	if _, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector: testDetector(t), OnTrigger: noop, Cooldown: -time.Second,
	}); err == nil {
		t.Error("negative cooldown accepted")
	}
}

func TestMonitorTriggersCallback(t *testing.T) {
	var got []rejuv.Trigger
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  testDetector(t),
		OnTrigger: func(tr rejuv.Trigger) { got = append(got, tr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(100) // fill
	m.Observe(100) // overflow -> trigger
	if len(got) != 1 {
		t.Fatalf("%d triggers, want 1", len(got))
	}
	if got[0].Observations != 2 {
		t.Fatalf("trigger at observation %d, want 2", got[0].Observations)
	}
	if got[0].Suppressed {
		t.Fatal("first trigger marked suppressed")
	}
	s := m.Stats()
	if s.Observations != 2 || s.Triggers != 1 || s.Suppressed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMonitorCooldownSuppresses(t *testing.T) {
	now := time.Unix(1000, 0)
	triggers := 0
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  testDetector(t),
		OnTrigger: func(rejuv.Trigger) { triggers++ },
		Cooldown:  10 * time.Second,
		Now:       func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	// First trigger fires.
	m.Observe(100)
	m.Observe(100)
	// Second trigger inside the cooldown window is suppressed.
	now = now.Add(5 * time.Second)
	m.Observe(100)
	m.Observe(100)
	// Third trigger after the window fires again.
	now = now.Add(11 * time.Second)
	m.Observe(100)
	m.Observe(100)
	if triggers != 2 {
		t.Fatalf("%d callbacks, want 2", triggers)
	}
	s := m.Stats()
	if s.Triggers != 2 || s.Suppressed != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if !s.LastTrigger.Equal(now) {
		t.Fatalf("last trigger %v, want %v", s.LastTrigger, now)
	}
}

func TestMonitorConcurrentObservers(t *testing.T) {
	det, err := rejuv.NewCLTA(rejuv.CLTAConfig{
		SampleSize: 10, Quantile: 1.96,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var triggers int
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  det,
		OnTrigger: func(rejuv.Trigger) { triggers++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Observe(100) // every sample triggers
			}
		}()
	}
	wg.Wait()
	s := m.Stats()
	if s.Observations != 8000 {
		t.Fatalf("observations = %d, want 8000 (lost updates under contention)", s.Observations)
	}
	// Every completed block of 10 observations of 100 must trigger.
	if want := uint64(800); s.Triggers != want {
		t.Fatalf("triggers = %d, want %d", s.Triggers, want)
	}
	if triggers != 800 {
		t.Fatalf("callback ran %d times, want 800", triggers)
	}
}

func TestMonitorObserveDuration(t *testing.T) {
	var mean float64
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  testDetector(t),
		OnTrigger: func(tr rejuv.Trigger) { mean = tr.Decision.SampleMean },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveDuration(30 * time.Second)
	m.ObserveDuration(30 * time.Second)
	if mean != 30 {
		t.Fatalf("sample mean %v, want 30 seconds", mean)
	}
}

func TestMonitorReset(t *testing.T) {
	triggers := 0
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  testDetector(t),
		OnTrigger: func(rejuv.Trigger) { triggers++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(100) // half way to a trigger
	m.Reset()
	m.Observe(100) // again half way: reset must have cleared the fill
	if triggers != 0 {
		t.Fatalf("%d triggers after reset, want 0", triggers)
	}
	if s := m.Stats(); s.Observations != 2 {
		t.Fatalf("observations = %d, want counters to survive reset", s.Observations)
	}
}

func TestMiddlewareObservesServiceTime(t *testing.T) {
	now := time.Unix(0, 0)
	var observed []float64
	det, err := rejuv.NewShewhart(3, rejuv.Baseline{Mean: 0.01, StdDev: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  det,
		OnTrigger: func(tr rejuv.Trigger) { observed = append(observed, tr.Decision.SampleMean) },
		Now:       func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	handler := m.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now = now.Add(100 * time.Millisecond) // the handler "takes" 100 ms
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	handler.ServeHTTP(httptest.NewRecorder(), req)
	if s := m.Stats(); s.Observations != 1 {
		t.Fatalf("observations = %d, want 1", s.Observations)
	}
	// 100 ms is far beyond 0.01 + 3*0.01: the trigger carries it.
	if len(observed) != 1 || observed[0] != 0.1 {
		t.Fatalf("observed = %v, want [0.1]", observed)
	}
}
