package rejuv_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rejuv"
)

func fleetClasses() []rejuv.StreamClass {
	return []rejuv.StreamClass{
		{
			Name: "web", Family: rejuv.FamilySRAA,
			SampleSize: 2, Buckets: 3, Depth: 2,
			Baseline: rejuv.Baseline{Mean: 5, StdDev: 1},
		},
		{
			Name: "db", Family: rejuv.FamilyCLTA,
			SampleSize: 4, Quantile: 1.96,
			Baseline: rejuv.Baseline{Mean: 5, StdDev: 1},
		},
	}
}

// TestFleetRoundTrip drives the public fleet API end to end: open
// streams, batch observations through to a trigger, journal everything,
// and prove the journal replays cleanly through reference detectors.
func TestFleetRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jw := rejuv.NewJournalWriter(&buf, rejuv.JournalMeta{CreatedBy: "fleet_test"})
	triggered := make(chan rejuv.FleetTrigger, 4)
	f, err := rejuv.NewFleet(rejuv.FleetConfig{
		Classes:   fleetClasses(),
		Cooldown:  time.Minute,
		Journal:   jw,
		OnTrigger: func(tr rejuv.FleetTrigger) { triggered <- tr },
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := rejuv.StreamID(1); id <= 10; id++ {
		class := "web"
		if id%2 == 0 {
			class = "db"
		}
		if err := f.OpenStream(id, class); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]rejuv.StreamObs, 0, 40)
	for round := 0; round < 4; round++ {
		for id := rejuv.StreamID(1); id <= 10; id++ {
			v := 5.0
			if id == 4 {
				v = 40 // stream 4 is degraded
			}
			batch = append(batch, rejuv.StreamObs{Stream: id, Value: v})
		}
	}
	f.ObserveBatch(batch)
	select {
	case tr := <-triggered:
		if tr.Stream != 4 || tr.Class != "db" {
			t.Fatalf("trigger on stream %d class %q, want stream 4 class db", tr.Stream, tr.Class)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no trigger delivered for the degraded stream")
	}
	f.Close()
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}

	byName := make(map[string]rejuv.StreamClass)
	for _, c := range fleetClasses() {
		byName[c.Name] = c
	}
	report, err := rejuv.ReplayFleetJournal(bytes.NewReader(buf.Bytes()),
		func(class string) (rejuv.Detector, error) {
			c, ok := byName[class]
			if !ok {
				return nil, fmt.Errorf("unknown class %q", class)
			}
			return c.Detector()
		})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Identical() {
		t.Fatalf("fleet journal failed replay verification: %v", report.Mismatch)
	}
	if report.Streams != 10 || report.Triggers == 0 {
		t.Fatalf("unexpected replay report: %+v", report)
	}
	if st := f.Stats(); st.Observations != 40 || st.Triggers != 1 {
		t.Fatalf("stats = %+v, want 40 observations and 1 trigger", st)
	}
}

// ExampleNewFleet monitors two streams in one batched engine; the
// degraded one triggers.
func ExampleNewFleet() {
	f, err := rejuv.NewFleet(rejuv.FleetConfig{
		Classes: []rejuv.StreamClass{{
			Name: "web", Family: rejuv.FamilyCLTA,
			SampleSize: 4, Quantile: 1.96,
			Baseline: rejuv.Baseline{Mean: 0.5, StdDev: 0.1},
		}},
	})
	if err != nil {
		panic(err)
	}
	defer f.Close()
	f.OpenStream(1, "web")
	f.OpenStream(2, "web")

	batch := make([]rejuv.StreamObs, 0, 8)
	for i := 0; i < 4; i++ {
		batch = append(batch,
			rejuv.StreamObs{Stream: 1, Value: 0.5}, // healthy
			rejuv.StreamObs{Stream: 2, Value: 2.5}, // degraded
		)
	}
	f.ObserveBatch(batch)

	tr := <-f.Triggers()
	fmt.Printf("stream %d triggered (mean %.2fs > target %.2fs)\n",
		tr.Stream, tr.Decision.SampleMean, tr.Decision.Target)
	// Output:
	// stream 2 triggered (mean 2.50s > target 0.60s)
}
