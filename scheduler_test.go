package rejuv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// noSleep makes actuator retries instantaneous in tests.
func noSleep(ctx context.Context, d time.Duration) error { return nil }

// actuators builds n actuators sharing the given Do function.
func actuators(t *testing.T, n int, do func(replica int) func(context.Context) error) []*Actuator {
	t.Helper()
	acts := make([]*Actuator, n)
	for i := range acts {
		a, err := NewActuator(ActuatorConfig{
			Do:          do(i),
			MaxAttempts: 2,
			Sleep:       noSleep,
		})
		if err != nil {
			t.Fatalf("NewActuator: %v", err)
		}
		acts[i] = a
	}
	return acts
}

// transitionLog collects scheduler transitions thread-safely and lets a
// test wait for a specific op on a specific replica.
type transitionLog struct {
	mu  sync.Mutex
	trs []SchedulerTransition
}

func (l *transitionLog) add(tr SchedulerTransition) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.trs = append(l.trs, tr)
}

func (l *transitionLog) wait(t *testing.T, op SchedulerOp, replica int) SchedulerTransition {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		l.mu.Lock()
		for _, tr := range l.trs {
			if tr.Op == op && tr.Replica == replica {
				l.mu.Unlock()
				return tr
			}
		}
		l.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no %v transition for replica %d", op, replica)
	return SchedulerTransition{}
}

func TestErrActuatorGaveUpSentinel(t *testing.T) {
	boom := errors.New("supervisor unreachable")
	a, err := NewActuator(ActuatorConfig{
		Do:          func(context.Context) error { return boom },
		MaxAttempts: 2,
		Sleep:       noSleep,
	})
	if err != nil {
		t.Fatalf("NewActuator: %v", err)
	}
	err = a.Execute(context.Background())
	if !errors.Is(err, ErrActuatorGaveUp) {
		t.Fatalf("give-up error %v is not ErrActuatorGaveUp", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("give-up error %v does not wrap the cause", err)
	}
	if !strings.Contains(err.Error(), "gave up after 2 attempts") {
		t.Fatalf("give-up error text %q lost the attempt count", err)
	}
	// A cancelled execution is not a give-up: no sentinel, no OnGiveUp.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := NewActuator(ActuatorConfig{
		Do:          func(ctx context.Context) error { return ctx.Err() },
		MaxAttempts: 3,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})
	if err := b.Execute(ctx); errors.Is(err, ErrActuatorGaveUp) {
		t.Fatalf("cancelled execution %v must not be a give-up", err)
	}
}

func TestSchedulerConfigValidation(t *testing.T) {
	acts := actuators(t, 2, func(int) func(context.Context) error {
		return func(context.Context) error { return nil }
	})
	if _, err := NewScheduler(SchedulerConfig{
		Policy:    SchedulerPolicy{Replicas: 3},
		Actuators: acts,
	}); err == nil {
		t.Fatal("mismatched actuator count accepted")
	}
	if _, err := NewScheduler(SchedulerConfig{
		Policy:    SchedulerPolicy{Replicas: 2},
		Actuators: []*Actuator{acts[0], nil},
	}); err == nil {
		t.Fatal("nil actuator accepted")
	}
	if _, err := NewScheduler(SchedulerConfig{
		Policy:    SchedulerPolicy{Replicas: 0},
		Actuators: nil,
	}); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

func TestSchedulerDispatchAndComplete(t *testing.T) {
	var calls [4]int
	var callMu sync.Mutex
	acts := actuators(t, 4, func(i int) func(context.Context) error {
		return func(context.Context) error {
			callMu.Lock()
			calls[i]++
			callMu.Unlock()
			return nil
		}
	})
	log := &transitionLog{}
	s, err := NewScheduler(SchedulerConfig{
		Policy:       OneDownPolicy(4, 30),
		Actuators:    acts,
		OnTransition: log.add,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	defer s.Close()

	s.Request(2, 5, 3, 0xABC)
	tr := log.wait(t, SchedOpComplete, 2)
	if !tr.OK {
		t.Fatalf("completion not OK: %+v", tr)
	}
	log.wait(t, SchedOpStart, 2)
	callMu.Lock()
	got := calls[2]
	callMu.Unlock()
	if got != 1 {
		t.Fatalf("actuator 2 called %d times, want 1", got)
	}
	st := s.Stats()
	if st.Starts != 1 || st.Completes != 1 {
		t.Fatalf("stats %+v, want one start and one complete", st)
	}
	if s.MaxDownSeen(0) != 1 {
		t.Fatalf("MaxDownSeen %d, want 1", s.MaxDownSeen(0))
	}
	if !s.InService(2) {
		t.Fatal("replica 2 should be back in service")
	}
}

// TestSchedulerGiveUpQuarantinesReplica is the give-up path end to end:
// a replica whose supervisor RPC is down exhausts its actuator, the
// scheduler quarantines it and sheds it from the capacity budget, and
// after the operator repairs and readmits it, a fresh request restarts
// it normally.
func TestSchedulerGiveUpQuarantinesReplica(t *testing.T) {
	var broken sync.Map // replica -> bool
	broken.Store(1, true)
	acts := actuators(t, 3, func(i int) func(context.Context) error {
		return func(context.Context) error {
			if v, ok := broken.Load(i); ok && v.(bool) {
				return fmt.Errorf("restart rpc: connection refused")
			}
			return nil
		}
	})
	log := &transitionLog{}
	quarantined := make(chan error, 1)
	s, err := NewScheduler(SchedulerConfig{
		Policy:       SchedulerPolicy{Replicas: 3, MaxDown: 2, FullPause: -1, MaxDefer: -1},
		Actuators:    acts,
		OnTransition: log.add,
		OnQuarantine: func(replica int, err error) {
			if replica == 1 {
				quarantined <- err
			}
		},
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	defer s.Close()

	s.Request(1, 5, 3, 0xF00)
	select {
	case err := <-quarantined:
		if !errors.Is(err, ErrActuatorGaveUp) {
			t.Fatalf("quarantine cause %v is not ErrActuatorGaveUp", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnQuarantine never fired")
	}
	tr := log.wait(t, SchedOpQuarantine, 1)
	if !strings.Contains(tr.Reason, "gave up") {
		t.Fatalf("quarantine reason %q lost the give-up cause", tr.Reason)
	}
	if s.Quarantined(0) != 1 || s.InService(1) {
		t.Fatalf("replica 1 not quarantined: quarantined=%d", s.Quarantined(0))
	}
	if got := acts[1].Stats().GiveUps; got != 1 {
		t.Fatalf("actuator 1 give-ups %d, want 1", got)
	}

	// Quarantine sheds capacity: the budget min(MaxDown, available) = 2
	// still admits the healthy pair with the third replica gone.
	s.Request(0, 5, 3, 0xF01)
	s.Request(2, 5, 3, 0xF02)
	log.wait(t, SchedOpComplete, 0)
	log.wait(t, SchedOpComplete, 2)

	// While quarantined, further requests are refused loudly, not run.
	s.Request(1, 5, 3, 0xF03)
	tr = log.wait(t, SchedOpDefer, 1)
	if tr.Reason != SchedReasonQuarantined {
		t.Fatalf("refusal reason %q, want %q", tr.Reason, SchedReasonQuarantined)
	}
	if got := acts[1].Stats().Executions; got != 1 {
		t.Fatalf("quarantined replica executed %d times, want 1", got)
	}

	// Repair the supervisor, readmit, and the replica restarts cleanly.
	broken.Store(1, false)
	s.Readmit(1)
	log.wait(t, SchedOpReadmit, 1)
	if !s.InService(1) {
		t.Fatal("readmitted replica not in service")
	}
	s.Request(1, 5, 3, 0xF04)
	tr = log.wait(t, SchedOpComplete, 1)
	if !tr.OK {
		t.Fatalf("post-readmission completion not OK: %+v", tr)
	}
}

// TestSchedulerFlakyActuatorRetriesWithinExecution checks the benign
// failure mode: an RPC that fails once and succeeds on retry stays
// inside one actuator execution and never reaches the governor as a
// failure.
func TestSchedulerFlakyActuatorRetriesWithinExecution(t *testing.T) {
	var first sync.Once
	acts := actuators(t, 2, func(i int) func(context.Context) error {
		return func(context.Context) error {
			var flake error
			if i == 0 {
				first.Do(func() { flake = errors.New("transient timeout") })
			}
			return flake
		}
	})
	log := &transitionLog{}
	s, err := NewScheduler(SchedulerConfig{
		Policy:       SchedulerPolicy{Replicas: 2, FullPause: -1, MaxDefer: -1},
		Actuators:    acts,
		OnTransition: log.add,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	defer s.Close()

	s.Request(0, 5, 3, 0xFA)
	tr := log.wait(t, SchedOpComplete, 0)
	if !tr.OK {
		t.Fatalf("flaky actuator completion not OK: %+v", tr)
	}
	st := acts[0].Stats()
	if st.Attempts != 2 || st.GiveUps != 0 {
		t.Fatalf("actuator stats %+v, want 2 attempts and no give-ups", st)
	}
	if got := s.Stats().Quarantines; got != 0 {
		t.Fatalf("quarantines %d, want 0", got)
	}
}

func TestSchedulerTriggerAdapters(t *testing.T) {
	acts := actuators(t, 2, func(int) func(context.Context) error {
		return func(context.Context) error { return nil }
	})
	log := &transitionLog{}
	s, err := NewScheduler(SchedulerConfig{
		Policy:       SchedulerPolicy{Replicas: 2, FullPause: -1, MaxDefer: -1},
		Actuators:    acts,
		OnTransition: log.add,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	defer s.Close()

	onTrigger := s.TriggerFunc(0)
	onTrigger(Trigger{ID: 0x11, Decision: Decision{Triggered: true, Level: 5, Fill: 2}})
	tr := log.wait(t, SchedOpEnqueue, 0)
	if tr.Level != 5 || tr.Fill != 2 || tr.TriggerID != 0x11 {
		t.Fatalf("monitor adapter lost decision state: %+v", tr)
	}
	log.wait(t, SchedOpComplete, 0)

	fleetward := s.FleetTriggerFunc(func(stream StreamID) int {
		if stream == 7 {
			return 1
		}
		return -1
	})
	fleetward(FleetTrigger{ID: 0x22, Stream: 7, Decision: Decision{Level: 4, Fill: 1}})
	fleetward(FleetTrigger{ID: 0x33, Stream: 9, Decision: Decision{Level: 4, Fill: 1}})
	tr = log.wait(t, SchedOpEnqueue, 1)
	if tr.TriggerID != 0x22 {
		t.Fatalf("fleet adapter routed wrong trigger: %+v", tr)
	}
	log.wait(t, SchedOpComplete, 1)
	if got := s.Stats().Enqueued; got != 2 {
		t.Fatalf("enqueued %d, want 2 (stream 9 should be dropped)", got)
	}
}

// TestSchedulerJournalReplay runs a journaled schedule — successes,
// a give-up quarantine, a readmission — and verifies the journal
// replays byte-identically under the same policy.
func TestSchedulerJournalReplay(t *testing.T) {
	var broken sync.Map
	broken.Store(2, true)
	acts := actuators(t, 3, func(i int) func(context.Context) error {
		return func(context.Context) error {
			if v, ok := broken.Load(i); ok && v.(bool) {
				return errors.New("restart rpc unreachable")
			}
			return nil
		}
	})
	var buf bytes.Buffer
	jw := NewJournalWriter(&buf, JournalMeta{CreatedBy: "scheduler-test"})
	log := &transitionLog{}
	s, err := NewScheduler(SchedulerConfig{
		Policy:       SchedulerPolicy{Replicas: 3, FullPause: -1, MaxDefer: -1},
		Actuators:    acts,
		Journal:      jw,
		OnTransition: log.add,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}

	s.Request(0, 5, 3, 0xA1)
	log.wait(t, SchedOpComplete, 0)
	s.Request(2, 4, 2, 0xA2)
	log.wait(t, SchedOpQuarantine, 2)
	broken.Store(2, false)
	s.Readmit(2)
	s.Request(2, 5, 3, 0xA3)
	log.wait(t, SchedOpComplete, 2)
	s.Request(1, 3, 1, 0xA4)
	log.wait(t, SchedOpComplete, 1)
	s.Close()

	jr, err := NewJournalReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewJournalReader: %v", err)
	}
	report, err := ReplaySchedJournal(jr, s.Policy())
	if err != nil {
		t.Fatalf("ReplaySchedJournal: %v", err)
	}
	if !report.Identical() {
		t.Fatalf("journal does not replay identically: %+v", report.Mismatch)
	}
	if report.Starts != 4 || report.Completes != 3 || report.Quarantines != 1 || report.Readmits != 1 {
		t.Fatalf("replay census %+v, want 4 starts / 3 completes / 1 quarantine / 1 readmit", report)
	}
	for _, down := range report.MaxDownSeen {
		if down > s.Policy().MaxDown {
			t.Fatalf("replayed MaxDownSeen %v exceeds budget %d", report.MaxDownSeen, s.Policy().MaxDown)
		}
	}
}

// TestSchedulerCloseIgnoresLateInput checks that a closed scheduler
// drops new requests instead of launching actuations.
func TestSchedulerCloseIgnoresLateInput(t *testing.T) {
	acts := actuators(t, 1, func(int) func(context.Context) error {
		return func(context.Context) error { return nil }
	})
	s, err := NewScheduler(SchedulerConfig{
		Policy:    SchedulerPolicy{Replicas: 1, FullPause: -1, MaxDefer: -1},
		Actuators: acts,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	s.Close()
	s.Request(0, 5, 3, 0x1)
	s.Tick()
	s.Readmit(0)
	if got := acts[0].Stats().Executions; got != 0 {
		t.Fatalf("closed scheduler executed %d actions", got)
	}
}
