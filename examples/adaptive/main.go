// Adaptive baseline scenario: the paper's algorithms assume the SLA
// specifies the healthy mean and standard deviation of the response
// time. Its conclusions propose estimating those parameters online as
// future work — which is what rejuv.NewAdaptive does: it learns the
// baseline from a warmup window, then builds the real detector from the
// learned values.
//
// Here the true service profile is unknown to the operator (mean ~180 ms
// rather than a guessed SLA), degradation arrives gradually, and the
// adaptive SARAA still catches it.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rejuv"
)

func main() {
	adaptive, err := rejuv.NewAdaptive(500, func(b rejuv.Baseline) (rejuv.Detector, error) {
		fmt.Printf("learned baseline after warmup: mean %.1f ms, sd %.1f ms\n\n",
			b.Mean*1000, b.StdDev*1000)
		return rejuv.NewSARAA(rejuv.SARAAConfig{
			InitialSampleSize: 5,
			Buckets:           3,
			Depth:             4,
			Baseline:          b,
		})
	})
	fatalIf(err)

	rng := rand.New(rand.NewSource(3))
	trueMean := 0.180 // seconds; the operator never configured this
	aging := 0.0      // grows after observation 2000

	triggered := -1
	for i := 1; i <= 6000; i++ {
		if i > 2000 {
			aging += 0.00025 // gradual degradation: +0.25 ms per request
		}
		rt := rng.ExpFloat64()*trueMean + aging
		if d := adaptive.Observe(rt); d.Triggered {
			triggered = i
			fmt.Printf("rejuvenation triggered at observation %d (sample mean %.1f ms, degradation %.1f ms)\n",
				i, d.SampleMean*1000, aging*1000)
			break
		}
	}
	if triggered < 0 {
		fmt.Println("degradation was never detected — adaptive baseline failed")
		os.Exit(1)
	}
	fmt.Println("\nthe detector needed no hand-tuned SLA: the warmup window supplied")
	fmt.Println("the healthy mean and standard deviation the algorithms build their")
	fmt.Println("bucket targets from.")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptive example:", err)
		os.Exit(1)
	}
}
