// Cluster scenario: four copies of the paper's e-commerce system behind
// a least-active router, each with its own SRAA detector, and a
// 30-second restart per rejuvenation with at most one host down at a
// time — the deployment style of the authors' companion work on cluster
// systems. The one-down/full-restart policy is the OneDownPolicy
// scheduler preset; see `rejuvsim -cluster` for the cost-aware
// alternative (partial rejuvenation, deadline deferral) on the same
// simulation.
//
// The run compares the cluster with rejuvenation against the same
// cluster without it, at a load where GC stalls dominate the response
// time.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"os"

	"rejuv"
)

func main() {
	const (
		hosts = 4
		// Cluster-wide offered load in CPUs: 4 hosts x 16 CPUs each can
		// serve 64 erlangs; we drive it near the single-host saturation
		// point per host.
		loadPerHost = 9.0
	)
	lambda := hosts * loadPerHost * 0.2
	baseline := rejuv.Baseline{Mean: 5, StdDev: 5}

	// The historical hardcoded policy, spelled as a scheduler preset:
	// at most one host down at a time, every action a full 30-second
	// restart, no deferral windows.
	policy := rejuv.OneDownPolicy(hosts, 30)

	run := func(name string, factory func(int) (rejuv.Detector, error)) rejuv.ClusterResult {
		cluster, err := rejuv.NewClusterSimulation(rejuv.ClusterConfig{
			Hosts:        hosts,
			ArrivalRate:  lambda,
			Routing:      rejuv.RouteLeastActive,
			Scheduler:    &policy,
			Transactions: 400_000,
			Seed:         11,
		}, factory)
		fatalIf(err)
		res, err := cluster.Run()
		fatalIf(err)
		fmt.Printf("%-22s avg RT %6.2f s   loss %.6f   rejuvenations %4d   GCs %4d\n",
			name, res.AvgRT(), res.LossFraction(), res.Rejuvenations, res.GCs)
		return res
	}

	fmt.Printf("cluster of %d hosts, %.1f CPUs offered load per host, 400,000 transactions\n\n", hosts, loadPerHost)
	plain := run("no rejuvenation", nil)
	guarded := run("SRAA per host", func(host int) (rejuv.Detector, error) {
		return rejuv.NewSRAA(rejuv.SRAAConfig{
			SampleSize: 2, Buckets: 5, Depth: 3, Baseline: baseline,
		})
	})

	fmt.Printf("\nper-host picture with rejuvenation:\n")
	for h, r := range guarded.PerHost {
		fmt.Printf("  host %d: completed %6d, lost %5d, rejuvenated %3d times, %3d GCs\n",
			h, r.Completed, r.Lost, r.Rejuvenations, r.GCs)
	}
	if guarded.Deferred > 0 {
		fmt.Printf("  (%d rejuvenation requests waited for another host to finish)\n", guarded.Deferred)
	}
	if plain.AvgRT() > guarded.AvgRT() {
		fmt.Printf("\nrejuvenation cut the cluster-wide average response time from %.2f s to %.2f s\n",
			plain.AvgRT(), guarded.AvgRT())
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster example:", err)
		os.Exit(1)
	}
}
