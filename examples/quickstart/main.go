// Quickstart: wire a response-time stream into a rejuvenation detector.
//
// A synthetic service emits response times that are healthy for a while
// and then degrade (the distribution shifts right, as software aging
// does). An SRAA detector watches the stream through a Monitor and
// raises a rejuvenation trigger; we "rejuvenate" by removing the
// degradation and continue.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"

	"rejuv"
)

func main() {
	// The SLA says: healthy response time has mean 100 ms and standard
	// deviation 100 ms (exponential-ish service, as in the paper).
	baseline := rejuv.Baseline{Mean: 0.100, StdDev: 0.100}

	detector, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 3, // average three observations per step
		Buckets:    2, // tolerate bursts; require a sustained shift
		Depth:      5,
		Baseline:   baseline,
	})
	if err != nil {
		panic(err)
	}

	degraded := false // the fault we will inject and repair
	rejuvenations := 0

	monitor, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector: detector,
		OnTrigger: func(t rejuv.Trigger) {
			rejuvenations++
			degraded = false // rejuvenation restores full capacity
			fmt.Printf("  -> rejuvenation #%d triggered after %d observations (sample mean %.0f ms)\n",
				rejuvenations, t.Observations, t.Decision.SampleMean*1000)
		},
	})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 1; i <= 3000; i++ {
		if i == 1000 {
			fmt.Println("injecting degradation at observation 1000 (mean response time triples)")
			degraded = true
		}
		rt := rng.ExpFloat64() * baseline.Mean
		if degraded {
			rt += math.Abs(rng.NormFloat64())*0.1 + 0.25 // aging: +250 ms and noisier
		}
		monitor.Observe(rt)
	}

	s := monitor.Stats()
	fmt.Printf("\nobservations: %d, triggers: %d\n", s.Observations, s.Triggers)
	if s.Triggers == 0 {
		fmt.Println("no rejuvenation was needed")
	}
}
