// Burst discrimination scenario: the design requirement behind the
// paper's multiple threshold levels is to "distinguish between
// performance degradation that occurs as a result of burstiness in the
// arrival process and software degradation that occurs as a result of
// software aging" (Section 1).
//
// This example runs the e-commerce system with NO aging at all (GC
// disabled) but with heavy transient arrival bursts, so every
// rejuvenation is a false alarm. A single-bucket configuration triggers
// constantly on burst-inflated response times; a multi-bucket
// configuration rides the bursts out. Then the same detectors face real
// aging and both catch it — burst tolerance is not blindness.
//
// Run with:
//
//	go run ./examples/bursts
package main

import (
	"fmt"
	"os"

	"rejuv"
)

func detector(n, k, d int) (rejuv.Detector, error) {
	return rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: n, Buckets: k, Depth: d,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
}

func main() {
	type row struct {
		name    string
		n, k, d int
	}
	rows := []row{
		{"multi-bucket  (2,5,3)", 2, 5, 3},
		{"single-bucket (15,1,1)", 15, 1, 1},
	}

	fmt.Println("phase 1 — bursts only (no aging): every rejuvenation is a false alarm")
	fmt.Println("  base load 4 CPUs; bursts to 14 CPUs for ~60 s every ~10 min")
	for _, r := range rows {
		det, err := detector(r.n, r.k, r.d)
		fatalIf(err)
		res, err := rejuv.Simulate(rejuv.SimulationConfig{
			ArrivalRate:  0.8,
			BurstFactor:  3.5,
			BurstOn:      60,
			BurstOff:     600,
			DisableGC:    true,
			Transactions: 200_000,
			Seed:         7,
		}, det)
		fatalIf(err)
		fmt.Printf("  %-24s false alarms %4d   loss %.6f   avg RT %.2f s\n",
			r.name, res.Rejuvenations, res.LossFraction(), res.AvgRT())
	}

	fmt.Println("\nphase 2 — real aging (GC stalls) plus the same bursts")
	for _, r := range rows {
		det, err := detector(r.n, r.k, r.d)
		fatalIf(err)
		res, err := rejuv.Simulate(rejuv.SimulationConfig{
			ArrivalRate:  1.6,
			BurstFactor:  2,
			BurstOn:      60,
			BurstOff:     600,
			Transactions: 200_000,
			Seed:         7,
		}, det)
		fatalIf(err)
		fmt.Printf("  %-24s rejuvenations %4d   loss %.6f   avg RT %.2f s\n",
			r.name, res.Rejuvenations, res.LossFraction(), res.AvgRT())
	}

	fmt.Println("\nthe buckets buy burst tolerance; the climb through K targets is")
	fmt.Println("what separates a temporary arrival surge from a genuine shift of")
	fmt.Println("the response-time distribution.")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bursts example:", err)
		os.Exit(1)
	}
}
