// HTTP server scenario: the paper's motivating case was an e-commerce
// system whose customer-affecting metric — response time — was not
// monitored, so a fault that degraded it eluded detection for months
// while CPU and memory charts looked fine.
//
// This example runs a real net/http server with an injected aging fault
// (service time grows with every request served since the last restart),
// times every request with the Monitor middleware, and lets a SARAA
// detector trigger "rejuvenation" (resetting the aging state, as a
// process restart would). A load generator drives the server and the
// program prints the observed response-time profile around each
// rejuvenation.
//
// The server also exposes the full observability surface:
//
//   - /metrics serves the rejuv metrics registry in Prometheus text
//     exposition format (add ?format=json for a JSON snapshot): the
//     request-latency histogram, trigger counters, and the detector's
//     bucket-occupancy gauges.
//   - /fleetz serves the fleet health snapshot (JSON, or human text
//     with ?format=text) of a fleet engine mirroring the same stream:
//     top-K aging streams, level histogram with exemplars, queue and
//     self telemetry. Render it live with: rejuvtop -url .../fleetz
//   - /debug/pprof/ serves the standard Go profiling endpoints when the
//     -pprof flag is set.
//
// After the load run the program scrapes its own /metrics and prints the
// detector series, then dumps the trace-log context that explains the
// last trigger: the sample means that walked the buckets to overflow.
//
// Run with:
//
//	go run ./examples/httpserver [-pprof]
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rejuv"
)

// agingHandler simulates a leaky service: each request takes a base time
// plus a penalty that grows with the number of requests served since the
// last restart.
type agingHandler struct {
	served atomic.Int64
	base   time.Duration
	leak   time.Duration // extra delay added per 100 requests served
}

func (h *agingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := h.served.Add(1)
	delay := h.base + time.Duration(n/100)*h.leak
	time.Sleep(delay)
	_, _ = fmt.Fprintln(w, "ok")
}

// restart is the rejuvenation action: in production this would recycle
// the worker process; here it clears the aging state.
func (h *agingHandler) restart() { h.served.Store(0) }

func main() {
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	journalP := flag.String("journal", "", "record a flight-recorder journal of every observation and decision to this file (inspect with rejuvtrace)")
	flag.Parse()

	handler := &agingHandler{base: 2 * time.Millisecond, leak: 2 * time.Millisecond}

	// SLA baseline: the healthy service answers in ~2 ms with little
	// variance. SARAA with acceleration reacts quickly once degradation
	// is confirmed.
	detector, err := rejuv.NewSARAA(rejuv.SARAAConfig{
		InitialSampleSize: 4,
		Buckets:           3,
		Depth:             4,
		Baseline:          rejuv.Baseline{Mean: 0.002, StdDev: 0.001},
	})
	fatalIf(err)

	// The journal records every observation and decision; after the run
	// it is verified by replay and can be inspected with rejuvtrace.
	var jw *rejuv.JournalWriter
	var journalBuf *bytes.Buffer
	var journalFile *os.File
	var journalOut *bufio.Writer
	if *journalP != "" {
		meta := rejuv.JournalMeta{
			CreatedBy: "examples/httpserver",
			Detector:  "SARAA (n=4, K=3, D=4)",
			Notes:     "injected aging fault, +2ms per 100 requests",
		}
		if *journalP == "-" {
			journalBuf = &bytes.Buffer{}
			jw = rejuv.NewJournalWriter(journalBuf, meta)
		} else {
			f, err := os.Create(*journalP)
			fatalIf(err)
			journalFile = f
			journalOut = bufio.NewWriter(f)
			jw = rejuv.NewJournalWriter(journalOut, meta)
		}
	}

	registry := rejuv.NewRegistry()
	trace := rejuv.NewTraceLog(256)
	trace.Instrument(registry)
	collector := rejuv.NewCollector(registry, rejuv.Label{Name: "algo", Value: "SARAA"})

	// A fleet engine mirrors the same response times, as a fleet-scale
	// deployment would run it: one stream here, but the /fleetz endpoint
	// and rejuvtop work unchanged at a hundred thousand. Health stays on
	// (the default top-K sketch) so the endpoint ranks aging streams.
	fleetEng, err := rejuv.NewFleet(rejuv.FleetConfig{
		Classes: []rejuv.StreamClass{{
			Name: "http", Family: rejuv.FamilySARAA,
			SampleSize: 4, Buckets: 3, Depth: 4,
			Baseline: rejuv.Baseline{Mean: 0.002, StdDev: 0.001},
		}},
	})
	fatalIf(err)
	defer fleetEng.Close()
	const fleetStream = rejuv.StreamID(1)
	fatalIf(fleetEng.OpenStream(fleetStream, "http"))

	// The restart goes through an Actuator because real restart RPCs
	// flake: this one refuses every first attempt (a busy supervisor) and
	// succeeds on the retry, so the backoff schedule carries each
	// rejuvenation to success and the journal records the retry timeline.
	var restartAttempts atomic.Int64
	actuator, err := rejuv.NewActuator(rejuv.ActuatorConfig{
		Do: func(context.Context) error {
			if restartAttempts.Add(1)%2 == 1 {
				return fmt.Errorf("restart rpc refused (supervisor busy)")
			}
			handler.restart()
			return nil
		},
		MaxAttempts: 3,
		Backoff:     2 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        1,
		Journal:     jw,
		Epoch:       time.Now(),
		Metrics:     registry,
		OnGiveUp: func(err error) {
			fmt.Println("  rejuvenation ESCALATED:", err)
		},
	})
	fatalIf(err)

	var mu sync.Mutex
	var rejuvenations []int64 // request count at each trigger
	monitor, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  detector,
		Cooldown:  50 * time.Millisecond,
		Collector: collector,
		Trace:     trace,
		Journal:   jw,
		// MaxSilence arms the staleness watchdog; with the load generator
		// running it never trips, but a wedged server would be flagged.
		MaxSilence: 10 * time.Second,
		OnTrigger: func(t rejuv.Trigger) {
			mu.Lock()
			rejuvenations = append(rejuvenations, int64(t.Observations))
			mu.Unlock()
			// Execute synchronously: the journal writer is shared with the
			// monitor and is not safe for concurrent use. ExecuteFor stamps
			// the trigger's id on the actuator's journal records, so
			// rejuvtrace -trigger renders the whole causality chain.
			fatalIf(actuator.ExecuteFor(context.Background(), t.ID))
			fmt.Printf("  rejuvenation at request %4d (sample mean %.1f ms, trigger id %#x)\n",
				t.Observations, t.Decision.SampleMean*1000, t.ID)
		},
	})
	fatalIf(err)

	// The fleet mirror rides an outer middleware: it times each request
	// itself and batches the value into the engine.
	mirror := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			next.ServeHTTP(w, r)
			fleetEng.ObserveBatch([]rejuv.StreamObs{
				{Stream: fleetStream, Value: time.Since(start).Seconds()},
			})
		})
	}

	mux := http.NewServeMux()
	mux.Handle("/", mirror(monitor.Middleware(handler)))
	mux.Handle("/metrics", registry.Handler())
	mux.Handle("/fleetz", rejuv.FleetzHandler(fleetEng, collector.Observed()))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := httptest.NewServer(mux)
	defer srv.Close()
	fmt.Printf("serving on %s with an injected aging fault (+%v per 100 requests)\n",
		srv.URL, handler.leak)
	fmt.Printf("metrics at %s/metrics, fleet health at %s/fleetz", srv.URL, srv.URL)
	if *pprofOn {
		fmt.Printf(", profiles at %s/debug/pprof/", srv.URL)
	}
	fmt.Print("\n\n")

	client := srv.Client()
	const requests = 1200
	var worst time.Duration
	for i := 1; i <= requests; i++ {
		start := time.Now()
		resp, err := client.Get(srv.URL)
		fatalIf(err)
		_ = resp.Body.Close()
		if d := time.Since(start); d > worst {
			worst = d
		}
	}

	s := monitor.Stats()
	fmt.Printf("\n%d requests, %d rejuvenations, worst response %v\n",
		requests, s.Triggers, worst.Round(time.Millisecond))
	as := actuator.Stats()
	fmt.Printf("actuator: %d executions, %d attempts, %d retried past a refused restart, %d gave up\n",
		as.Executions, as.Attempts, as.Retries, as.GiveUps)
	if s.Triggers == 0 {
		fmt.Println("warning: aging was never detected — check the baseline")
		os.Exit(1)
	}

	// Scrape our own /metrics and show the detector's state as a
	// Prometheus scraper would see it.
	fmt.Println("\n/metrics excerpt (detector and trigger series):")
	resp, err := client.Get(srv.URL + "/metrics")
	fatalIf(err)
	body, err := io.ReadAll(resp.Body)
	fatalIf(err)
	_ = resp.Body.Close()
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "rejuv_detector_") ||
			strings.HasPrefix(line, "rejuv_triggers_total") ||
			strings.HasPrefix(line, "rejuv_observed_metric_count") {
			fmt.Println("  " + line)
		}
	}

	// The /fleetz text view is what rejuvtop renders: the fleet mirror's
	// health — one stream here, the same surface at fleet scale.
	fmt.Println("\n/fleetz?format=text (fleet health, as rejuvtop renders it):")
	resp, err = client.Get(srv.URL + "/fleetz?format=text")
	fatalIf(err)
	body, err = io.ReadAll(resp.Body)
	fatalIf(err)
	_ = resp.Body.Close()
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		fmt.Println("  " + line)
	}

	// The trace log explains the last trigger: each line is one detector
	// evaluation with its inputs — the evidence behind the decision.
	fmt.Println("\ntrace context of the last trigger (sample means vs. targets):")
	for _, e := range trace.TriggerContext(4) {
		mark := ""
		if e.Triggered {
			mark = "  << trigger"
		}
		fmt.Printf("  obs %4d: mean %6.1f ms vs target %6.1f ms, bucket level %d fill %d%s\n",
			e.Observation, e.SampleMean*1000, e.Target*1000, e.Level, e.Fill, mark)
	}

	// Close out the journal and prove the decision stream replays
	// byte-identically — the flight recorder is trustworthy evidence.
	if jw != nil {
		fatalIf(jw.Err())
		var journalData io.Reader
		switch {
		case journalBuf != nil:
			journalData = bytes.NewReader(journalBuf.Bytes())
		default:
			fatalIf(journalOut.Flush())
			fatalIf(journalFile.Close())
			f, err := os.Open(*journalP)
			fatalIf(err)
			defer f.Close()
			journalData = f
		}
		jr, err := rejuv.NewJournalReader(journalData)
		fatalIf(err)
		rep, err := rejuv.ReplayJournal(jr, func() (rejuv.Detector, error) {
			return rejuv.NewSARAA(rejuv.SARAAConfig{
				InitialSampleSize: 4, Buckets: 3, Depth: 4,
				Baseline: rejuv.Baseline{Mean: 0.002, StdDev: 0.001},
			})
		})
		fatalIf(err)
		fmt.Printf("\njournal: %d observations, %d decisions recorded", rep.Observations, rep.Decisions)
		if journalFile != nil {
			fmt.Printf(" to %s (inspect with rejuvtrace)", *journalP)
		}
		fmt.Println()
		if rep.Identical() {
			fmt.Println("journal replay: decision stream verified byte-identical")
		} else {
			fmt.Println("journal replay DIVERGED:", rep.Mismatch.Error())
			os.Exit(1)
		}
	}

	fmt.Println("\nresponse time stayed bounded because the monitor watched the metric")
	fmt.Println("customers experience, not CPU or memory proxies.")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpserver example:", err)
		os.Exit(1)
	}
}
