// HTTP server scenario: the paper's motivating case was an e-commerce
// system whose customer-affecting metric — response time — was not
// monitored, so a fault that degraded it eluded detection for months
// while CPU and memory charts looked fine.
//
// This example runs a real net/http server with an injected aging fault
// (service time grows with every request served since the last restart),
// times every request with the Monitor middleware, and lets a SARAA
// detector trigger "rejuvenation" (resetting the aging state, as a
// process restart would). A load generator drives the server and the
// program prints the observed response-time profile around each
// rejuvenation.
//
// Run with:
//
//	go run ./examples/httpserver
package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rejuv"
)

// agingHandler simulates a leaky service: each request takes a base time
// plus a penalty that grows with the number of requests served since the
// last restart.
type agingHandler struct {
	served atomic.Int64
	base   time.Duration
	leak   time.Duration // extra delay added per 100 requests served
}

func (h *agingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := h.served.Add(1)
	delay := h.base + time.Duration(n/100)*h.leak
	time.Sleep(delay)
	_, _ = fmt.Fprintln(w, "ok")
}

// restart is the rejuvenation action: in production this would recycle
// the worker process; here it clears the aging state.
func (h *agingHandler) restart() { h.served.Store(0) }

func main() {
	handler := &agingHandler{base: 2 * time.Millisecond, leak: 2 * time.Millisecond}

	// SLA baseline: the healthy service answers in ~2 ms with little
	// variance. SARAA with acceleration reacts quickly once degradation
	// is confirmed.
	detector, err := rejuv.NewSARAA(rejuv.SARAAConfig{
		InitialSampleSize: 4,
		Buckets:           3,
		Depth:             4,
		Baseline:          rejuv.Baseline{Mean: 0.002, StdDev: 0.001},
	})
	fatalIf(err)

	var mu sync.Mutex
	var rejuvenations []int64 // request count at each trigger
	monitor, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector: detector,
		Cooldown: 50 * time.Millisecond,
		OnTrigger: func(t rejuv.Trigger) {
			mu.Lock()
			rejuvenations = append(rejuvenations, int64(t.Observations))
			mu.Unlock()
			handler.restart()
			fmt.Printf("  rejuvenation at request %4d (sample mean %.1f ms)\n",
				t.Observations, t.Decision.SampleMean*1000)
		},
	})
	fatalIf(err)

	srv := httptest.NewServer(monitor.Middleware(handler))
	defer srv.Close()
	fmt.Printf("serving on %s with an injected aging fault (+%v per 100 requests)\n\n",
		srv.URL, handler.leak)

	client := srv.Client()
	const requests = 1200
	var worst time.Duration
	for i := 1; i <= requests; i++ {
		start := time.Now()
		resp, err := client.Get(srv.URL)
		fatalIf(err)
		_ = resp.Body.Close()
		if d := time.Since(start); d > worst {
			worst = d
		}
	}

	s := monitor.Stats()
	fmt.Printf("\n%d requests, %d rejuvenations, worst response %v\n",
		requests, s.Triggers, worst.Round(time.Millisecond))
	if s.Triggers == 0 {
		fmt.Println("warning: aging was never detected — check the baseline")
		os.Exit(1)
	}
	fmt.Println("response time stayed bounded because the monitor watched the metric")
	fmt.Println("customers experience, not CPU or memory proxies.")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpserver example:", err)
		os.Exit(1)
	}
}
