// E-commerce scenario: the paper's Section-3 system under heavy load,
// comparing no rejuvenation against the three algorithms of the paper
// with the configurations of its Fig. 16 comparison.
//
// The simulated system is a 16-CPU Java application whose full garbage
// collections stall every running request for 60 seconds — the aging
// mechanism that motivated the paper. Each algorithm watches the
// response time of completed transactions and decides when to clear the
// system; the trade-off is average response time against the fraction
// of transactions killed by rejuvenation.
//
// Run with:
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"os"

	"rejuv"
)

func main() {
	const load = 9.0 // offered load in CPUs (lambda/mu), near saturation
	baseline := rejuv.Baseline{Mean: 5, StdDev: 5}

	type contender struct {
		name  string
		build func() (rejuv.Detector, error)
	}
	contenders := []contender{
		{"no rejuvenation", func() (rejuv.Detector, error) { return nil, nil }},
		{"SRAA  (n=2, K=5, D=3)", func() (rejuv.Detector, error) {
			return rejuv.NewSRAA(rejuv.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: baseline})
		}},
		{"SARAA (n=2, K=5, D=3)", func() (rejuv.Detector, error) {
			return rejuv.NewSARAA(rejuv.SARAAConfig{InitialSampleSize: 2, Buckets: 5, Depth: 3, Baseline: baseline})
		}},
		{"CLTA  (n=30, N=1.96)", func() (rejuv.Detector, error) {
			return rejuv.NewCLTA(rejuv.CLTAConfig{SampleSize: 30, Quantile: 1.96, Baseline: baseline})
		}},
	}

	fmt.Printf("e-commerce model at %.1f CPUs offered load, 5 x 100,000 transactions each\n\n", load)
	fmt.Printf("%-24s %12s %12s %14s %8s\n", "algorithm", "avg RT (s)", "loss", "rejuvenations", "GCs")
	for _, c := range contenders {
		var completedRT float64
		var completed, lost, rejuvs, gcs int64
		for rep := 0; rep < 5; rep++ {
			det, err := c.build()
			fatalIf(err)
			res, err := rejuv.Simulate(rejuv.SimulationConfig{
				ArrivalRate: load * 0.2,
				Seed:        42,
				Stream:      uint64(rep) + 1,
			}, det)
			fatalIf(err)
			completedRT += res.RT.Mean() * float64(res.Completed)
			completed += res.Completed
			lost += res.Lost
			rejuvs += res.Rejuvenations
			gcs += res.GCs
		}
		avgRT := completedRT / float64(completed)
		loss := float64(lost) / float64(completed+lost)
		fmt.Printf("%-24s %12.2f %12.6f %14d %8d\n", c.name, avgRT, loss, rejuvs, gcs)
	}
	fmt.Println("\nthe bucketed algorithms trade a controlled amount of lost work for")
	fmt.Println("bounded response times; without rejuvenation every GC stall's backlog")
	fmt.Println("must drain through the queue instead.")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecommerce example:", err)
		os.Exit(1)
	}
}
