package rejuv

import (
	"rejuv/internal/core"
	"rejuv/internal/metrics"
)

// This file is the observability surface of the package: a re-export of
// the internal/metrics registry and a Collector that publishes monitor
// and detector state through it. See doc.go, "Observability".

// Registry is a dependency-free metrics registry: counters, gauges and
// fixed-bucket histograms with atomic hot paths, rendered in Prometheus
// text exposition format (Registry.WritePrometheus, Registry.Handler)
// or as a JSON snapshot (Registry.WriteJSON, Registry.Snapshot).
type Registry = metrics.Registry

// Label is one name="value" pair attached to a metric series.
type Label = metrics.Label

// MetricCounter is a monotonically increasing count.
type MetricCounter = metrics.Counter

// MetricGauge is a float64 metric that may move in both directions.
type MetricGauge = metrics.Gauge

// MetricHistogram counts observations into fixed buckets with inclusive
// upper bounds.
type MetricHistogram = metrics.Histogram

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return metrics.NewRegistry() }

// LinearBuckets returns n histogram bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	return metrics.LinearBuckets(start, width, n)
}

// ExponentialBuckets returns n histogram bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	return metrics.ExponentialBuckets(start, factor, n)
}

// DetectorInternals is a point-in-time snapshot of a detector's internal
// state: bucket occupancy, sample progress, current target.
type DetectorInternals = core.Internals

// Instrumented is optionally implemented by detectors that can expose
// their internal state; every detector in this package implements it.
type Instrumented = core.Instrumented

// Collector publishes monitor activity into a Registry: observation and
// trigger counts, an observed-value histogram, cooldown state, and —
// when the detector implements Instrumented — its bucket occupancy,
// sample size and target. Attach one via MonitorConfig.Collector; the
// monitor updates it under its lock, so one collector must not be
// shared between monitors unless their label sets differ.
type Collector struct {
	observations  *metrics.Counter
	evaluations   *metrics.Counter
	triggers      *metrics.Counter
	suppressed    *metrics.Counter
	rejected      *metrics.Counter
	stallsTotal   *metrics.Counter
	triggerPanics *metrics.Counter
	cooldown      *metrics.Gauge
	stalledGauge  *metrics.Gauge
	observed      *metrics.Histogram

	level      *metrics.Gauge
	fill       *metrics.Gauge
	sampleSize *metrics.Gauge
	sampleFill *metrics.Gauge
	target     *metrics.Gauge
	sampleMean *metrics.Gauge
	meanDist   *metrics.Gauge
}

// NewCollector registers the monitor metric family in reg and returns a
// collector for MonitorConfig.Collector. The optional labels are
// attached to every series, so several monitors can share one registry
// (for example Label{Name: "detector", Value: "SRAA"}).
//
// The series, all prefixed rejuv_:
//
//	rejuv_observations_total          observations fed to the detector
//	rejuv_observed_metric             histogram of observed values
//	                                  (seconds when fed by Middleware)
//	rejuv_samples_evaluated_total     completed samples (detector steps)
//	rejuv_triggers_total              triggers delivered to OnTrigger
//	rejuv_triggers_suppressed_total   triggers eaten by the cooldown
//	rejuv_observations_rejected_total non-finite observations intercepted
//	                                  by the hygiene policy
//	rejuv_stalls_total                staleness-watchdog trips
//	rejuv_trigger_panics_total        panics recovered from OnTrigger
//	rejuv_cooldown_active             1 while inside the cooldown window
//	rejuv_stream_stalled              1 while the stream is silent beyond
//	                                  MaxSilence
//	rejuv_detector_bucket_level       current bucket pointer N
//	rejuv_detector_bucket_fill        current ball count d
//	rejuv_detector_sample_size        sample size n currently in effect
//	rejuv_detector_sample_fill        observations toward the next sample
//	rejuv_detector_target             current trigger threshold
//	rejuv_detector_last_sample_mean   most recent completed sample mean
//	rejuv_detector_mean_minus_target  that mean's distance from the
//	                                  target it was compared against
//
// Detector gauges reflect the state after the decision: immediately
// after a trigger they show the freshly reset detector.
func NewCollector(reg *Registry, labels ...Label) *Collector {
	return &Collector{
		observations: reg.Counter("rejuv_observations_total",
			"observations fed to the detector", labels...),
		observed: reg.Histogram("rejuv_observed_metric",
			"observed values of the monitored metric (seconds when fed by Middleware)",
			metrics.DefLatencyBuckets, labels...),
		evaluations: reg.Counter("rejuv_samples_evaluated_total",
			"completed samples, i.e. detector bucket or threshold steps", labels...),
		triggers: reg.Counter("rejuv_triggers_total",
			"rejuvenation triggers delivered to OnTrigger", labels...),
		suppressed: reg.Counter("rejuv_triggers_suppressed_total",
			"triggers suppressed by the cooldown window", labels...),
		rejected: reg.Counter("rejuv_observations_rejected_total",
			"non-finite observations intercepted by the hygiene policy", labels...),
		stallsTotal: reg.Counter("rejuv_stalls_total",
			"staleness-watchdog trips: silences longer than MaxSilence", labels...),
		triggerPanics: reg.Counter("rejuv_trigger_panics_total",
			"panics recovered from the OnTrigger callback", labels...),
		cooldown: reg.Gauge("rejuv_cooldown_active",
			"1 while the monitor is inside its cooldown window", labels...),
		stalledGauge: reg.Gauge("rejuv_stream_stalled",
			"1 while the observation stream has been silent beyond MaxSilence", labels...),
		level: reg.Gauge("rejuv_detector_bucket_level",
			"current bucket pointer N", labels...),
		fill: reg.Gauge("rejuv_detector_bucket_fill",
			"current ball count d in the current bucket", labels...),
		sampleSize: reg.Gauge("rejuv_detector_sample_size",
			"sample size n currently in effect", labels...),
		sampleFill: reg.Gauge("rejuv_detector_sample_fill",
			"observations accumulated toward the next sample", labels...),
		target: reg.Gauge("rejuv_detector_target",
			"threshold the next sample mean is compared against", labels...),
		sampleMean: reg.Gauge("rejuv_detector_last_sample_mean",
			"most recent completed sample mean", labels...),
		meanDist: reg.Gauge("rejuv_detector_mean_minus_target",
			"distance of the last sample mean from the target it was compared against",
			labels...),
	}
}

// Observed returns the collector's observed-metric histogram
// (rejuv_observed_metric) — pass it to FleetzHandler to attach a
// latency quantile digest to /fleetz snapshots.
func (c *Collector) Observed() *MetricHistogram { return c.observed }

// observe publishes one monitor decision. Called by Monitor.Observe
// under the monitor lock.
func (c *Collector) observe(x float64, d Decision, det Detector, suppressed, inCooldown bool) {
	c.observations.Inc()
	c.observed.Observe(x)
	if d.Evaluated {
		c.evaluations.Inc()
		c.sampleMean.Set(d.SampleMean)
		c.meanDist.Set(d.SampleMean - d.Target)
	}
	if d.Triggered {
		if suppressed {
			c.suppressed.Inc()
		} else {
			c.triggers.Inc()
		}
	}
	if inCooldown {
		c.cooldown.Set(1)
	} else {
		c.cooldown.Set(0)
	}
	if in, ok := det.(Instrumented); ok {
		snap := in.Internals()
		c.level.SetInt(snap.Level)
		c.fill.SetInt(snap.Fill)
		c.sampleSize.SetInt(snap.SampleSize)
		c.sampleFill.SetInt(snap.SampleFill)
		c.target.Set(snap.Target)
	} else if d.Evaluated {
		c.level.SetInt(d.Level)
		c.fill.SetInt(d.Fill)
	}
}
