package rejuv_test

import (
	"math"
	"testing"

	"rejuv"
)

func TestSimulateSmoke(t *testing.T) {
	det, err := rejuv.NewSARAA(rejuv.SARAAConfig{
		InitialSampleSize: 2, Buckets: 5, Depth: 3,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rejuv.Simulate(rejuv.SimulationConfig{
		ArrivalRate:  1.8,
		Transactions: 20_000,
		Seed:         1,
	}, det)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Lost < 20_000 {
		t.Fatalf("only %d transactions done", res.Completed+res.Lost)
	}
	if res.Rejuvenations == 0 {
		t.Fatal("no rejuvenations at high load")
	}
	if math.IsNaN(res.AvgRT()) || res.AvgRT() <= 0 {
		t.Fatalf("avg RT = %v", res.AvgRT())
	}
}

func TestSimulateNilDetectorDisablesRejuvenation(t *testing.T) {
	res, err := rejuv.Simulate(rejuv.SimulationConfig{
		ArrivalRate:  0.5,
		Transactions: 5_000,
		Seed:         2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejuvenations != 0 || res.Lost != 0 {
		t.Fatalf("nil detector produced %d rejuvenations, %d lost", res.Rejuvenations, res.Lost)
	}
}

func TestSimulateInvalidConfig(t *testing.T) {
	if _, err := rejuv.Simulate(rejuv.SimulationConfig{}, nil); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
}

func TestNewSimulationHooks(t *testing.T) {
	m, err := rejuv.NewSimulation(rejuv.SimulationConfig{
		ArrivalRate:  1.0,
		Transactions: 2_000,
		Seed:         3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	m.OnComplete = func(rt float64) {
		if rt <= 0 {
			t.Errorf("non-positive response time %v", rt)
		}
		count++
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if int64(count) != res.Completed {
		t.Fatalf("hook saw %d completions, result says %d", count, res.Completed)
	}
}

func TestSimulateCluster(t *testing.T) {
	res, err := rejuv.SimulateCluster(rejuv.ClusterConfig{
		Hosts:        2,
		ArrivalRate:  2 * 1.6,
		Transactions: 10_000,
		Seed:         4,
	}, func(host int) (rejuv.Detector, error) {
		return rejuv.NewSRAA(rejuv.SRAAConfig{
			SampleSize: 2, Buckets: 5, Depth: 3,
			Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerHost) != 2 {
		t.Fatalf("%d per-host results, want 2", len(res.PerHost))
	}
	if res.Completed+res.Lost < 10_000 {
		t.Fatalf("only %d transactions done", res.Completed+res.Lost)
	}
}

func TestNewStaticDetectorIsPerObservation(t *testing.T) {
	det, err := rejuv.NewStaticDetector(1, 1, rejuv.Baseline{Mean: 5, StdDev: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Static = SRAA with n=1: every observation evaluates.
	if d := det.Observe(100); !d.Evaluated {
		t.Fatal("static detector did not evaluate a single observation")
	}
}

func TestPublicConstructorsValidate(t *testing.T) {
	bad := rejuv.Baseline{} // zero StdDev
	if _, err := rejuv.NewSRAA(rejuv.SRAAConfig{SampleSize: 1, Buckets: 1, Depth: 1, Baseline: bad}); err == nil {
		t.Error("NewSRAA accepted a zero baseline")
	}
	if _, err := rejuv.NewSARAA(rejuv.SARAAConfig{InitialSampleSize: 1, Buckets: 1, Depth: 1, Baseline: bad}); err == nil {
		t.Error("NewSARAA accepted a zero baseline")
	}
	if _, err := rejuv.NewCLTA(rejuv.CLTAConfig{SampleSize: 30, Quantile: 1.96, Baseline: bad}); err == nil {
		t.Error("NewCLTA accepted a zero baseline")
	}
	if _, err := rejuv.NewAdaptive(0, nil); err == nil {
		t.Error("NewAdaptive accepted warmup 0")
	}
	if _, err := rejuv.NewEWMA(2, 3, rejuv.Baseline{Mean: 5, StdDev: 5}); err == nil {
		t.Error("NewEWMA accepted weight 2")
	}
	if _, err := rejuv.NewCUSUM(-1, 4, rejuv.Baseline{Mean: 5, StdDev: 5}); err == nil {
		t.Error("NewCUSUM accepted negative slack")
	}
	if _, err := rejuv.NewShewhart(0, rejuv.Baseline{Mean: 5, StdDev: 5}); err == nil {
		t.Error("NewShewhart accepted zero limit")
	}
}

func TestDetectorInterfaceSatisfied(t *testing.T) {
	base := rejuv.Baseline{Mean: 5, StdDev: 5}
	builders := []func() (rejuv.Detector, error){
		func() (rejuv.Detector, error) {
			return rejuv.NewSRAA(rejuv.SRAAConfig{SampleSize: 1, Buckets: 1, Depth: 1, Baseline: base})
		},
		func() (rejuv.Detector, error) {
			return rejuv.NewSARAA(rejuv.SARAAConfig{InitialSampleSize: 1, Buckets: 1, Depth: 1, Baseline: base})
		},
		func() (rejuv.Detector, error) {
			return rejuv.NewCLTA(rejuv.CLTAConfig{SampleSize: 5, Quantile: 1.96, Baseline: base})
		},
		func() (rejuv.Detector, error) { return rejuv.NewShewhart(3, base) },
		func() (rejuv.Detector, error) { return rejuv.NewEWMA(0.2, 3, base) },
		func() (rejuv.Detector, error) { return rejuv.NewCUSUM(0.5, 4, base) },
	}
	for i, build := range builders {
		det, err := build()
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		det.Observe(1)
		det.Reset()
	}
}
