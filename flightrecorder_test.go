package rejuv

import (
	"bytes"
	"testing"
	"time"
)

// fr builds a monitor with a fake clock and a binary journal attached.
func frMonitor(t *testing.T, buf *bytes.Buffer, cooldown time.Duration) (*Monitor, *fakeClock) {
	t.Helper()
	det, err := NewSRAA(SRAAConfig{SampleSize: 2, Buckets: 3, Depth: 2,
		Baseline: Baseline{Mean: 5, StdDev: 5}})
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m, err := NewMonitor(MonitorConfig{
		Detector:  det,
		OnTrigger: func(Trigger) {},
		Cooldown:  cooldown,
		Now:       clk.now,
		Journal:   NewJournalWriter(buf, JournalMeta{CreatedBy: "flightrecorder_test"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, clk
}

// fakeClock steps one second per observation.
type fakeClock struct{ t time.Time }

// now returns the current fake time and advances it.
func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Second)
	return c.t
}

// TestMonitorJournalReplays drives a monitor through enough bad
// observations to trigger, then replays the journal: the decision
// stream must verify byte-identically, with timestamps relative to the
// first observation.
func TestMonitorJournalReplays(t *testing.T) {
	var buf bytes.Buffer
	m, _ := frMonitor(t, &buf, 0)
	for i := 0; i < 40; i++ {
		m.Observe(50) // far above target: fill the buckets
	}
	m.Reset()

	jr, err := NewJournalReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewJournalReader: %v", err)
	}
	if jr.Meta().CreatedBy != "flightrecorder_test" {
		t.Errorf("meta round-trip: %+v", jr.Meta())
	}
	rep, err := ReplayJournal(jr, func() (Detector, error) {
		return NewSRAA(SRAAConfig{SampleSize: 2, Buckets: 3, Depth: 2,
			Baseline: Baseline{Mean: 5, StdDev: 5}})
	})
	if err != nil {
		t.Fatalf("ReplayJournal: %v", err)
	}
	if !rep.Identical() {
		t.Fatalf("monitor journal did not replay identically: %v", rep.Mismatch.Error())
	}
	if rep.Observations != 40 || rep.Triggers == 0 || rep.Resets != 1 {
		t.Errorf("replay report: %+v", rep)
	}
}

// TestMonitorJournalRecordsSuppression pins that cooldown-suppressed
// triggers are journaled as suppressed — and that replay still
// verifies, because suppression is carried over, not recomputed.
func TestMonitorJournalRecordsSuppression(t *testing.T) {
	var buf bytes.Buffer
	// The fake clock ticks 1s per observation; a long cooldown
	// suppresses every trigger after the first.
	m, _ := frMonitor(t, &buf, time.Hour)
	for i := 0; i < 80; i++ {
		m.Observe(50)
	}

	jr, err := NewJournalReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := jr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var delivered, suppressed int
	firstT := -1.0
	for _, r := range recs {
		if firstT < 0 && r.Kind == JournalKindObserve {
			firstT = r.Time
		}
		if r.Triggered {
			if r.Suppressed {
				suppressed++
			} else {
				delivered++
			}
		}
	}
	if delivered != 1 || suppressed == 0 {
		t.Errorf("journaled %d delivered, %d suppressed triggers; want 1 and >0", delivered, suppressed)
	}
	if firstT != 0 {
		t.Errorf("first journaled observation at t=%v, want 0 (epoch-relative)", firstT)
	}

	jr2, err := NewJournalReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayJournal(jr2, func() (Detector, error) {
		return NewSRAA(SRAAConfig{SampleSize: 2, Buckets: 3, Depth: 2,
			Baseline: Baseline{Mean: 5, StdDev: 5}})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("suppressed-trigger journal did not replay: %v", rep.Mismatch.Error())
	}
}

// TestMonitorJournalRecordsRebaselines drives a Rebase-wrapped monitor
// across a pure workload shift: the committed rebaseline must land in
// MonitorStats, be journaled as a rebaseline record, and replay
// byte-identically — committed baseline bits included — through a fresh
// Rebase detector.
func TestMonitorJournalRecordsRebaselines(t *testing.T) {
	factory := func() (Detector, error) {
		return NewRebaseDetector(ShiftConfig{}, Baseline{Mean: 5, StdDev: 5},
			func(base Baseline) (Detector, error) {
				return NewSRAA(SRAAConfig{SampleSize: 2, Buckets: 3, Depth: 2, Baseline: base})
			})
	}
	det, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m, err := NewMonitor(MonitorConfig{
		Detector:  det,
		OnTrigger: func(Trigger) {},
		Now:       clk.now,
		Journal:   NewJournalWriter(&buf, JournalMeta{CreatedBy: "flightrecorder_test"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Observe(5) // steady on baseline
	}
	for i := 0; i < 60; i++ {
		m.Observe(30) // abrupt step: a workload shift, not aging
	}
	st := m.Stats()
	if st.Rebaselines == 0 {
		t.Fatal("monitor counted no rebaselines across the step")
	}
	if st.Triggers != 0 {
		t.Fatalf("monitor raised %d false triggers across a pure shift", st.Triggers)
	}

	jr, err := NewJournalReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayJournal(jr, factory)
	if err != nil {
		t.Fatalf("ReplayJournal: %v", err)
	}
	if !rep.Identical() {
		t.Fatalf("rebaselining journal did not replay identically: %v", rep.Mismatch.Error())
	}
	if uint64(rep.Rebaselines) != st.Rebaselines {
		t.Errorf("journal holds %d rebaselines, monitor counted %d", rep.Rebaselines, st.Rebaselines)
	}
}
