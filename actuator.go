package rejuv

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rejuv/internal/xrand"
)

// ErrActuatorGaveUp marks terminal actuation exhaustion: every attempt
// of one execution failed and the OnGiveUp hook (if any) has fired.
// Callers distinguish it from a cancelled execution with errors.Is —
// a Scheduler quarantines the replica on give-up but merely requeues
// it when the execution was cancelled or the attempt budget was spent
// by a shutdown.
var ErrActuatorGaveUp = errors.New("rejuv: rejuvenation action gave up")

// This file is the actuation half of the rejuvenation pipeline: the
// Monitor decides WHEN to rejuvenate, the Actuator makes the restart
// actually HAPPEN — with a per-attempt timeout, bounded retries under
// capped exponential backoff with deterministic jitter, and a terminal
// escalation hook when every attempt fails. A rejuvenation action is an
// RPC to a process supervisor or orchestrator, and those calls hang,
// flake and die like any other; an actuator that silently fails turns a
// performance problem into an outage.

// ActuatorConfig configures an Actuator.
type ActuatorConfig struct {
	// Do performs one rejuvenation attempt (restart the worker pool,
	// kill the pod, flush the cache). Required. It must honour ctx
	// cancellation: the per-attempt Timeout is delivered through it.
	Do func(ctx context.Context) error
	// Timeout bounds each attempt; the attempt's context is cancelled
	// when it expires and the attempt counts as failed. Zero means no
	// per-attempt timeout.
	Timeout time.Duration
	// MaxAttempts bounds the retry loop per execution. Zero means the
	// default of 3.
	MaxAttempts int
	// Backoff is the delay before the second attempt; each further
	// retry doubles it, capped at MaxBackoff. Zero means the default of
	// 1s.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means the default of
	// 30s.
	MaxBackoff time.Duration
	// Seed seeds the deterministic backoff jitter (half the nominal
	// delay is kept, the other half is drawn uniformly), so retry storms
	// decorrelate across replicas yet replay identically under one
	// seed.
	Seed uint64
	// OnGiveUp, when non-nil, runs after the final failed attempt of an
	// execution — the escalation point: page a human, mark the node
	// unschedulable. It receives the terminal error.
	OnGiveUp func(err error)
	// Now supplies the time; nil means time.Now. Tests inject a fake.
	Now func() time.Time
	// Sleep implements the backoff wait; nil means a real timer honoring
	// ctx. Tests and simulations inject a virtual clock.
	Sleep func(ctx context.Context, d time.Duration) error
	// Journal, when non-nil, records the execution timeline: one
	// act_start per execution, one act_attempt per attempt (with its
	// outcome and the backoff chosen after it), and act_give_up on
	// terminal failure — rendered by rejuvtrace as a retry timeline.
	// The journal writer is not safe for concurrent use: when the
	// actuator shares a writer with a Monitor, invoke Execute
	// synchronously from OnTrigger (which runs under the monitor lock),
	// not via the async Trigger helper.
	Journal *JournalWriter
	// Epoch anchors journal timestamps (seconds since Epoch). Zero means
	// the first execution anchors it — pass the monitor's first
	// observation time to keep the two timelines aligned.
	Epoch time.Time
	// Metrics, when non-nil, registers the actuator series:
	//
	//	rejuv_actuator_executions_total  executions started
	//	rejuv_actuator_attempts_total    individual attempts
	//	rejuv_actuator_retries_total     failed attempts that were retried
	//	rejuv_actuator_giveups_total     executions that exhausted retries
	//	rejuv_actuator_coalesced_total   Trigger calls skipped because an
	//	                                 execution was already in flight
	Metrics *Registry
	// MetricLabels are attached to every actuator series.
	MetricLabels []Label
}

// ActuatorStats is a snapshot of actuator counters.
type ActuatorStats struct {
	// Executions counts Execute calls (including those via Trigger).
	Executions uint64
	// Attempts counts individual Do invocations.
	Attempts uint64
	// Retries counts failed attempts that were followed by another.
	Retries uint64
	// Successes counts executions that ended in a successful attempt.
	Successes uint64
	// GiveUps counts executions that exhausted MaxAttempts.
	GiveUps uint64
	// Coalesced counts Trigger calls absorbed by an in-flight execution.
	Coalesced uint64
}

// Actuator executes a rejuvenation action with retries, backoff and
// give-up escalation. Use Trigger as a Monitor's OnTrigger callback for
// asynchronous, coalescing execution, or call Execute directly for
// synchronous control.
type Actuator struct {
	cfg ActuatorConfig

	mu sync.Mutex
	// rng backs the backoff jitter; xrand.Rand is not safe for
	// concurrent use, and Execute may be called from any goroutine.
	rng      *xrand.Rand   // guarded by mu
	stats    ActuatorStats // guarded by mu
	inFlight bool          // guarded by mu
	epoch    time.Time     // guarded by mu

	mExecutions *MetricCounter
	mAttempts   *MetricCounter
	mRetries    *MetricCounter
	mGiveUps    *MetricCounter
	mCoalesced  *MetricCounter
}

// actuatorJitterStream is the xrand stream id of the backoff jitter.
const actuatorJitterStream = 0xac7

// NewActuator validates the configuration and returns an actuator.
func NewActuator(cfg ActuatorConfig) (*Actuator, error) {
	if cfg.Do == nil {
		return nil, fmt.Errorf("rejuv: actuator needs a Do action")
	}
	if cfg.MaxAttempts < 0 || cfg.Timeout < 0 || cfg.Backoff < 0 || cfg.MaxBackoff < 0 {
		return nil, fmt.Errorf("rejuv: actuator durations and attempt bounds must be non-negative")
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = time.Second
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepContext
	}
	a := &Actuator{
		cfg:   cfg,
		rng:   xrand.NewStream(cfg.Seed, actuatorJitterStream),
		epoch: cfg.Epoch,
	}
	if reg := cfg.Metrics; reg != nil {
		l := cfg.MetricLabels
		a.mExecutions = reg.Counter("rejuv_actuator_executions_total",
			"rejuvenation action executions started", l...)
		a.mAttempts = reg.Counter("rejuv_actuator_attempts_total",
			"individual rejuvenation action attempts", l...)
		a.mRetries = reg.Counter("rejuv_actuator_retries_total",
			"failed attempts that were retried", l...)
		a.mGiveUps = reg.Counter("rejuv_actuator_giveups_total",
			"executions that exhausted their attempts", l...)
		a.mCoalesced = reg.Counter("rejuv_actuator_coalesced_total",
			"Trigger calls coalesced into an in-flight execution", l...)
	}
	return a, nil
}

// sleepContext is the production backoff wait: a real timer that aborts
// when ctx is cancelled.
func sleepContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Stats returns a snapshot of the actuator counters.
func (a *Actuator) Stats() ActuatorStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// backoffAfter returns the jittered delay to wait after failed attempt
// n (1-based): half of min(Backoff*2^(n-1), MaxBackoff) plus a uniform
// draw over the other half, from the actuator's deterministic stream.
//
//lint:holds mu
func (a *Actuator) backoffAfter(attempt int) time.Duration {
	d := a.cfg.Backoff << (attempt - 1)
	if d > a.cfg.MaxBackoff || d <= 0 { // <= 0 catches shift overflow
		d = a.cfg.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(a.rng.Float64()*float64(d-half))
}

// Execute runs one rejuvenation action to completion: up to MaxAttempts
// attempts, each bounded by Timeout, separated by jittered exponential
// backoff. It returns nil as soon as an attempt succeeds. When every
// attempt fails it journals the give-up, invokes OnGiveUp with the
// terminal error and returns it. A cancelled ctx aborts between
// attempts and during backoff with ctx's error (no OnGiveUp: the caller
// chose to stop, the action did not exhaust its chances).
func (a *Actuator) Execute(ctx context.Context) error {
	return a.execute(ctx, 0)
}

// ExecuteFor is Execute with a trigger correlation id: every journal
// record of the execution (act_start, act_attempt, act_give_up) carries
// triggerID, linking the actuation back to the triggering decision that
// provoked it. Pass Trigger.ID from an OnTrigger callback; id 0 means
// an uncorrelated (manual) execution and is equivalent to Execute.
func (a *Actuator) ExecuteFor(ctx context.Context, triggerID uint64) error {
	return a.execute(ctx, triggerID)
}

// execute is the shared body of Execute and ExecuteFor.
func (a *Actuator) execute(ctx context.Context, triggerID uint64) error {
	a.mu.Lock()
	a.stats.Executions++
	now := a.cfg.Now()
	if a.epoch.IsZero() {
		a.epoch = now
	}
	if jw := a.cfg.Journal; jw != nil {
		jw.ActStart(now.Sub(a.epoch).Seconds(), triggerID)
	}
	a.mu.Unlock()
	inc(a.mExecutions)

	var lastErr error
	for attempt := 1; attempt <= a.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		lastErr = a.attempt(ctx)
		inc(a.mAttempts)

		backoff := time.Duration(0)
		retrying := lastErr != nil && attempt < a.cfg.MaxAttempts
		a.mu.Lock()
		if retrying {
			// Drawing the jitter under the lock keeps the rng stream
			// race-free when executions overlap.
			backoff = a.backoffAfter(attempt)
		}
		a.stats.Attempts++
		if retrying {
			a.stats.Retries++
		}
		if lastErr == nil {
			a.stats.Successes++
		}
		if jw := a.cfg.Journal; jw != nil {
			t := a.cfg.Now().Sub(a.epoch).Seconds()
			errText := ""
			if lastErr != nil {
				errText = lastErr.Error()
			}
			jw.ActAttempt(t, attempt, lastErr == nil, backoff.Seconds(), errText, triggerID)
		}
		a.mu.Unlock()

		if lastErr == nil {
			return nil
		}
		if retrying {
			inc(a.mRetries)
			if err := a.cfg.Sleep(ctx, backoff); err != nil {
				return err
			}
		}
	}

	err := fmt.Errorf("%w after %d attempts: %w",
		ErrActuatorGaveUp, a.cfg.MaxAttempts, lastErr)
	a.mu.Lock()
	a.stats.GiveUps++
	if jw := a.cfg.Journal; jw != nil {
		jw.ActGiveUp(a.cfg.Now().Sub(a.epoch).Seconds(), a.cfg.MaxAttempts, err.Error(), triggerID)
	}
	a.mu.Unlock()
	inc(a.mGiveUps)
	if a.cfg.OnGiveUp != nil {
		a.cfg.OnGiveUp(err)
	}
	return err
}

// attempt runs one Do invocation under the per-attempt timeout.
func (a *Actuator) attempt(ctx context.Context) error {
	if a.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.cfg.Timeout)
		defer cancel()
	}
	return a.cfg.Do(ctx)
}

// Trigger starts an asynchronous execution; it is shaped to serve as a
// MonitorConfig.OnTrigger callback. Triggers arriving while an
// execution is still in flight are coalesced — the in-flight restart
// already serves them — and counted in Stats().Coalesced. Do not pair
// Trigger with a Journal shared with the monitor; the journal writer is
// not concurrency-safe (give the actuator its own writer instead).
func (a *Actuator) Trigger(t Trigger) {
	a.mu.Lock()
	if a.inFlight {
		a.stats.Coalesced++
		a.mu.Unlock()
		inc(a.mCoalesced)
		return
	}
	a.inFlight = true
	a.mu.Unlock()
	go func() {
		defer func() {
			a.mu.Lock()
			a.inFlight = false
			a.mu.Unlock()
		}()
		_ = a.execute(context.Background(), t.ID)
	}()
}

// inc bumps an optional metric counter; the actuator's metrics are nil
// when no Registry was configured.
func inc(c *MetricCounter) {
	if c != nil {
		c.Inc()
	}
}
