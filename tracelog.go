package rejuv

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEntry is one recorded detector decision with the inputs that
// produced it, so a fired trigger can be explained after the fact:
// which sample mean, compared against which target, moved which bucket.
type TraceEntry struct {
	// Observation is the monitor's observation count when the decision
	// was made (1-based).
	Observation uint64 `json:"observation"`
	// Time is the wall-clock time of the decision, from
	// MonitorConfig.Now.
	Time time.Time `json:"time"`
	// Value is the raw observation that completed the sample.
	Value float64 `json:"value"`
	// SampleMean is the completed sample mean the detector evaluated.
	SampleMean float64 `json:"sample_mean"`
	// Target is the threshold SampleMean was compared against.
	Target float64 `json:"target"`
	// Level is the bucket pointer N after the step (0 for detectors
	// without buckets).
	Level int `json:"level"`
	// Fill is the ball count d after the step (0 for detectors without
	// buckets).
	Fill int `json:"fill"`
	// SampleSize is the sample size in effect after the step, when the
	// detector is Instrumented (0 otherwise).
	SampleSize int `json:"sample_size,omitempty"`
	// Statistic is the chart statistic after the step for EWMA/CUSUM
	// detectors, when Instrumented.
	Statistic float64 `json:"statistic,omitempty"`
	// Triggered reports that this decision called for rejuvenation.
	Triggered bool `json:"triggered,omitempty"`
	// Suppressed reports that the trigger fell inside the cooldown
	// window and was not delivered.
	Suppressed bool `json:"suppressed,omitempty"`
	// TriggerID is the correlation id minted for a triggering decision
	// (see Trigger.ID); 0 on non-triggering entries.
	TriggerID uint64 `json:"trigger_id,omitempty"`
}

// DefaultTraceCapacity is the ring size NewTraceLog uses when given a
// non-positive capacity.
const DefaultTraceCapacity = 1024

// TraceLog is a fixed-capacity ring buffer of detector decisions.
// Attach one via MonitorConfig.Trace and the monitor records every
// evaluated decision (one entry per completed sample, not per raw
// observation); when the ring is full the oldest entries are
// overwritten. All methods are safe for concurrent use.
type TraceLog struct {
	mu      sync.Mutex
	entries []TraceEntry // guarded by mu
	next    int          // ring write position once the ring is full; guarded by mu
	total   uint64       // entries ever recorded; guarded by mu
	readTo  uint64       // highest ordinal included in any snapshot so far; guarded by mu
	dropped uint64       // entries overwritten before any snapshot saw them; guarded by mu

	// droppedCtr mirrors dropped into a metrics registry when
	// Instrument was called; nil otherwise; guarded by mu.
	droppedCtr *MetricCounter
}

// NewTraceLog returns a trace log keeping the most recent capacity
// entries (DefaultTraceCapacity when capacity <= 0).
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceLog{entries: make([]TraceEntry, 0, capacity)}
}

// Record appends one entry, overwriting the oldest once the ring is
// full. Monitors call it automatically; it is exported so replay and
// analysis tooling can build logs from recorded data.
func (l *TraceLog) Record(e TraceEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.entries) < cap(l.entries) {
		l.entries = append(l.entries, e) //lint:allow hotpath the ring is preallocated at capacity; this append never grows
		return
	}
	// Entries carry 1-based ordinals; the one being overwritten is the
	// oldest retained, ordinal total - capacity. If no snapshot ever
	// included it, its evidence is lost for good — count the drop so
	// operators can tell "the ring was big enough" from "we lost
	// decisions nobody looked at".
	if overwritten := l.total - uint64(len(l.entries)); overwritten > l.readTo {
		l.dropped++
		if l.droppedCtr != nil {
			l.droppedCtr.Inc()
		}
	}
	l.entries[l.next] = e
	l.next++
	if l.next == len(l.entries) {
		l.next = 0
	}
}

// Dropped returns the number of entries that were overwritten before
// any snapshot (Entries, TriggerContext or Dump) had seen them.
func (l *TraceLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Instrument registers rejuv_tracelog_dropped_total in reg and
// increments it whenever the ring overwrites a never-snapshotted
// entry. Call it once, before the log is attached to a monitor.
func (l *TraceLog) Instrument(reg *Registry, labels ...Label) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.droppedCtr = reg.Counter("rejuv_tracelog_dropped_total",
		"trace entries overwritten before any snapshot read them", labels...)
	l.droppedCtr.Add(l.dropped)
}

// Len returns the number of entries currently retained.
func (l *TraceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Total returns the number of entries ever recorded, including those
// already overwritten.
func (l *TraceLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns a copy of the retained entries, oldest first.
func (l *TraceLog) Entries() []TraceEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.readTo = l.total
	return l.snapshotLocked()
}

// snapshotLocked copies the ring in oldest-first order; l.mu is held.
//
//lint:holds mu
func (l *TraceLog) snapshotLocked() []TraceEntry {
	out := make([]TraceEntry, 0, len(l.entries))
	if len(l.entries) == cap(l.entries) {
		out = append(out, l.entries[l.next:]...)
		out = append(out, l.entries[:l.next]...)
		return out
	}
	return append(out, l.entries...)
}

// TriggerContext returns the most recent triggered entry together with
// up to k-1 entries leading into it, oldest first — the minimal
// explanation of why the detector fired. It returns nil when no
// retained entry triggered.
func (l *TraceLog) TriggerContext(k int) []TraceEntry {
	if k <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.readTo = l.total
	all := l.snapshotLocked()
	for i := len(all) - 1; i >= 0; i-- {
		if !all[i].Triggered {
			continue
		}
		start := i - k + 1
		if start < 0 {
			start = 0
		}
		return all[start : i+1]
	}
	return nil
}

// dumpHeader is the first line of a Dump: how much of the decision
// history the entry lines that follow actually cover.
type dumpHeader struct {
	// Retained is the number of entry lines that follow.
	Retained int `json:"retained"`
	// Total is the number of entries ever recorded.
	Total uint64 `json:"total"`
	// Dropped is the number of entries overwritten before any snapshot
	// saw them — evidence lost for good.
	Dropped uint64 `json:"dropped"`
}

// Dump writes a header line followed by the retained entries as JSON
// lines (one object per line, oldest first), the format jq and log
// pipelines expect. The header reports how many entries the dump
// retains, how many were ever recorded, and how many were dropped
// (overwritten before any snapshot saw them), so a reader can tell a
// complete history from a truncated one.
func (l *TraceLog) Dump(w io.Writer) error {
	l.mu.Lock()
	l.readTo = l.total
	entries := l.snapshotLocked()
	hdr := dumpHeader{Retained: len(entries), Total: l.total, Dropped: l.dropped}
	l.mu.Unlock()

	enc := json.NewEncoder(w)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
