module rejuv

go 1.22
