// Command autocorr reproduces the autocorrelation study of the paper's
// Section 4.1: five independent replications of 100,000 transactions of
// the pure M/M/16 system at lambda = 1.6, mu = 0.2 (overhead, GC, and
// rejuvenation disabled), estimating the first-order autocorrelation of
// the response-time series with the first 10,000 transactions dropped,
// and testing each coefficient against the 95% threshold 1.96/sqrt(n).
//
// The paper found the coefficient significant in one of five
// replications and concluded that first-order correlation plays a minor
// role even at the maximum load of interest.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"rejuv/internal/ecommerce"
	"rejuv/internal/stats"
)

func main() {
	var (
		lambda = flag.Float64("lambda", 1.6, "arrival rate (transactions/second)")
		txns   = flag.Int64("txns", 100_000, "transactions per replication")
		warmup = flag.Int("warmup", 10_000, "transient transactions to drop")
		reps   = flag.Int("reps", 5, "replications")
		lag    = flag.Int("lag", 1, "autocorrelation lag")
		seed   = flag.Uint64("seed", 1, "base random seed")
	)
	flag.Parse()

	if int64(*warmup) >= *txns {
		fatal(fmt.Errorf("warmup %d must be smaller than transactions %d", *warmup, *txns))
	}

	n := int(*txns) - *warmup
	threshold := 1.96 / math.Sqrt(float64(n))
	fmt.Printf("pure M/M/16, lambda=%.4g, mu=0.2; %d replications of %d transactions, first %d dropped\n",
		*lambda, *reps, *txns, *warmup)
	fmt.Printf("95%% significance threshold: |gamma| > 1.96/sqrt(%d) = %.6f\n\n", n, threshold)

	significant := 0
	for rep := 0; rep < *reps; rep++ {
		series := make([]float64, 0, *txns)
		model, err := ecommerce.New(ecommerce.Config{
			ArrivalRate:     *lambda,
			Transactions:    *txns,
			DisableOverhead: true,
			DisableGC:       true,
			Seed:            *seed,
			Stream:          uint64(rep) + 1,
		}, nil)
		fatalIf(err)
		model.OnComplete = func(rt float64) { series = append(series, rt) }
		if _, err := model.Run(); err != nil {
			fatal(err)
		}
		trimmed := series[*warmup:]
		gamma, err := stats.Autocorrelation(trimmed, *lag)
		fatalIf(err)
		sig := stats.AutocorrelationSignificant(gamma, len(trimmed))
		if sig {
			significant++
		}
		sum := stats.Summarize(trimmed)
		fmt.Printf("replication %d: gamma_%d = %+.6f  significant=%-5v  (RT %s)\n",
			rep+1, *lag, gamma, sig, sum)
	}
	fmt.Printf("\nsignificant in %d of %d replications (paper: 1 of 5)\n", significant, *reps)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autocorr:", err)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
