// Command rejuvtop is the fleet operator's top(1): a live view over
// fleet health snapshots, ranking the most-aged streams (deepest
// detector bucket levels first), the fleet-wide level histogram with
// exemplars, per-class detection statistics, trigger-queue state and
// the monitoring process's own runtime telemetry.
//
// Two modes:
//
//	rejuvtop -snapshot health.json     render one snapshot and exit
//	rejuvtop -url http://host:8080/fleetz   poll live, redrawing
//
// The snapshot format is exactly what the /fleetz endpoint serves
// (rejuv.FleetzHandler / Fleet.HealthSnapshot), so a snapshot can be
// captured with curl and rendered offline later:
//
//	curl -s localhost:8080/fleetz > health.json && rejuvtop -snapshot health.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"rejuv/internal/health"
)

func main() {
	snapshotPath := flag.String("snapshot", "", "render one snapshot from a JSON `file` ('-' for stdin) and exit")
	url := flag.String("url", "", "poll a /fleetz `endpoint` and redraw (e.g. http://localhost:8080/fleetz)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval for -url")
	once := flag.Bool("once", false, "with -url: fetch and render a single snapshot, then exit")
	flag.Parse()

	switch {
	case *snapshotPath != "":
		snap, err := loadSnapshot(*snapshotPath)
		if err != nil {
			fatalf("%v", err)
		}
		render(snap, false)
	case *url != "":
		for {
			snap, err := fetchSnapshot(*url)
			if err != nil {
				fatalf("%v", err)
			}
			render(snap, !*once)
			if *once {
				return
			}
			time.Sleep(*interval)
		}
	default:
		fmt.Fprintln(os.Stderr, "rejuvtop: one of -snapshot or -url is required")
		flag.Usage()
		os.Exit(2)
	}
}

// loadSnapshot reads a snapshot from a JSON file or stdin ("-").
func loadSnapshot(path string) (*health.Snapshot, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var snap health.Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding snapshot %s: %w", path, err)
	}
	return &snap, nil
}

// fetchSnapshot pulls one snapshot from a /fleetz endpoint.
func fetchSnapshot(url string) (*health.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap health.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &snap, nil
}

// render draws one snapshot; clear prefixes the ANSI home+erase
// sequence for the live redraw loop.
func render(snap *health.Snapshot, clear bool) {
	if clear {
		fmt.Print("\033[H\033[2J")
	}
	if err := health.WriteText(os.Stdout, snap); err != nil {
		fatalf("rendering: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rejuvtop: "+format+"\n", args...)
	os.Exit(1)
}
