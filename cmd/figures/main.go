// Command figures regenerates every data figure of the paper's
// evaluation: Fig. 5 (analytical density of the sample-average response
// time vs its normal approximation) and Figs. 9–16 (simulation load
// sweeps of the rejuvenation algorithms). For each figure it writes a
// CSV with the raw numbers, an SVG chart, and a text table, and prints
// the table to stdout.
//
// Usage:
//
//	figures [-fig all|5|9|10|11|12|13|14|15|16] [-out results] [-quick]
//
// The default run uses the paper's fidelity (five replications of
// 100,000 transactions per load point); -quick cuts this down for a
// fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rejuv/internal/ecommerce"
	"rejuv/internal/experiment"
	"rejuv/internal/mmc"
	"rejuv/internal/plot"
	"rejuv/internal/stats"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate: all, 5, 9, 10, 11, 12, 13, 14, 15, 16")
		out   = flag.String("out", "results", "output directory")
		quick = flag.Bool("quick", false, "reduced fidelity: 2 replications of 20,000 transactions, coarser load axis")
		seed  = flag.Uint64("seed", 1, "base random seed")
		ascii = flag.Bool("ascii", false, "also print each figure as an ASCII chart")
		sim   = flag.Bool("sim", false, "fig 5: overlay an empirical density from simulated M/M/16 sample means")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	cfg := experiment.SweepConfig{Seed: *seed}
	if *quick {
		cfg.Replications = 2
		cfg.Transactions = 20_000
		cfg.Loads = []float64{0.5, 2, 4, 6, 8, 9, 10}
	}

	want := func(id string) bool { return *fig == "all" || *fig == id || "fig"+*fig == id || "fig0"+*fig == id }

	if want("fig05") {
		if err := runFig5(*out, *sim, *seed); err != nil {
			fatal(err)
		}
	}
	if *fig == "cluster" || *fig == "all" {
		if err := runClusterExtension(*out, cfg, *seed); err != nil {
			fatal(err)
		}
	}
	if *fig == "bursts" || *fig == "all" {
		if err := runBurstExtension(*out, cfg, *seed); err != nil {
			fatal(err)
		}
	}
	for _, f := range experiment.PaperFigures() {
		if !want(f.ID) {
			continue
		}
		start := time.Now()
		fmt.Printf("running %s: %s ...\n", f.ID, f.Title)
		res, err := experiment.RunFigure(cfg, f)
		if err != nil {
			fatal(err)
		}
		chart, err := writeFigure(*out, res)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n(%s in %v)\n\n", res.Table(), f.ID, time.Since(start).Round(time.Second))
		if *ascii {
			text, err := chart.ASCII(90, 24)
			if err != nil {
				fatal(err)
			}
			fmt.Println(text)
		}
	}
}

// simulatedAvgRTDensity runs the pure M/M/16 model and bins
// non-overlapping sample means of size n into an empirical density over
// [lo, hi), validating eq. (4) against simulation.
func simulatedAvgRTDensity(n int, lo, hi float64, bins int, seed uint64) (*stats.Histogram, error) {
	h := stats.NewHistogram(lo, hi, bins)
	m, err := rejuvSimPure(seed)
	if err != nil {
		return nil, err
	}
	var sum float64
	var count int
	m.OnComplete = func(rt float64) {
		sum += rt
		count++
		if count == n {
			h.Add(sum / float64(n))
			sum, count = 0, 0
		}
	}
	if _, err := m.Run(); err != nil {
		return nil, err
	}
	return h, nil
}

// rejuvSimPure builds the pure M/M/16 model (no overhead, no GC, no
// rejuvenation) used for the Fig. 5 empirical overlay.
func rejuvSimPure(seed uint64) (*ecommerce.Model, error) {
	return ecommerce.New(ecommerce.Config{
		ArrivalRate:     1.6,
		Transactions:    500_000,
		DisableOverhead: true,
		DisableGC:       true,
		Seed:            seed,
		Stream:          1,
	}, nil)
}

// runFig5 produces the analytical Fig. 5: the density of X̄n for
// n = 1, 5, 15, 30 with the approximating normal overlay, for the
// M/M/16 system at lambda = 1.6, mu = 0.2, plus the tail-probability
// table quoted in Section 4.1. With sim set, an empirical density from
// simulated sample means is added as a third series.
func runFig5(out string, sim bool, seed uint64) error {
	sys, err := mmc.New(16, 1.6, 0.2)
	if err != nil {
		return err
	}
	mean := sys.RTMean()
	fmt.Printf("running fig05: density of the average response time (analytical)\n")
	fmt.Printf("M/M/16, lambda=1.6, mu=0.2: Wc=%.6f, E[X]=%.4f, SD[X]=%.4f\n",
		sys.Wc(), mean, sys.RTStdDev())

	csv := &strings.Builder{}
	csv.WriteString("n,x,exact_density,normal_density\n")
	for _, n := range []int{1, 5, 15, 30} {
		m, sd := sys.NormalApprox(n)
		lo, hi := 0.0, mean+5*sd*4
		if n == 1 {
			lo, hi = 0, 25
		}
		const points = 120
		xs := make([]float64, points+1)
		for i := range xs {
			xs[i] = lo + (hi-lo)*float64(i)/points
		}
		exact, err := sys.AvgRTPDF(n, xs)
		if err != nil {
			return err
		}
		normal := make([]float64, len(xs))
		for i, x := range xs {
			normal[i] = stats.NormPDF(x, m, sd)
		}
		for i, x := range xs {
			fmt.Fprintf(csv, "%d,%.6g,%.8g,%.8g\n", n, x, exact[i], normal[i])
		}
		chart := plot.Chart{
			Title:  fmt.Sprintf("Density of the average response time, n = %d", n),
			XLabel: "x",
			YLabel: "f(x)",
			Series: []plot.Series{
				{Name: "exact (CTMC absorption, eq. 4)", X: xs, Y: exact},
				{Name: "normal approximation", X: xs, Y: normal},
			},
		}
		if sim {
			h, err := simulatedAvgRTDensity(n, lo, hi, 60, seed)
			if err != nil {
				return err
			}
			empX := make([]float64, len(h.Counts))
			for i := range empX {
				empX[i] = h.BinCenter(i)
			}
			chart.Series = append(chart.Series, plot.Series{
				Name: "simulated (500k transactions)", X: empX, Y: h.Density(),
			})
		}
		svg, err := os.Create(filepath.Join(out, fmt.Sprintf("fig05_n%d.svg", n)))
		if err != nil {
			return err
		}
		if err := chart.WriteSVG(svg); err != nil {
			_ = svg.Close()
			return err
		}
		if err := svg.Close(); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(out, "fig05.csv"), []byte(csv.String()), 0o644); err != nil {
		return err
	}

	fmt.Println("tail mass beyond the 97.5% normal quantile (paper: 3.69% for n=15, 3.37% for n=30):")
	for _, n := range []int{15, 30} {
		tail, err := sys.TailBeyondNormalQuantile(n, 0.975)
		if err != nil {
			return err
		}
		fmt.Printf("  n=%2d: %.2f%%\n", n, tail*100)
	}
	fmt.Println()
	return nil
}

// runClusterExtension produces the ext_cluster figure: cluster-wide
// average response time versus per-host load for 1, 2 and 4 hosts with
// serialized 30 s restarts.
func runClusterExtension(out string, sweep experiment.SweepConfig, seed uint64) error {
	fmt.Println("running ext_cluster: cluster scaling (extension) ...")
	start := time.Now()
	cfg := experiment.ClusterSweepConfig{
		Loads:        sweep.Loads,
		Transactions: sweep.Transactions,
		Replications: sweep.Replications,
		Seed:         seed,
	}
	series, err := experiment.RunClusterSweep(cfg)
	if err != nil {
		return err
	}
	chart := plot.Chart{
		Title:  "Extension: cluster scaling, SRAA (n=2, K=5, D=3) per host, 30 s restarts",
		XLabel: "Offered Load per Host (CPUs)",
		YLabel: "Average Response Time",
	}
	var csv strings.Builder
	csv.WriteString("hosts,load_per_host_cpus,avg_rt,loss_fraction,rejuvenations,deferred\n")
	for _, s := range series {
		ps := plot.Series{Name: fmt.Sprintf("%d host(s)", s.Hosts)}
		for _, p := range s.Points {
			ps.X = append(ps.X, p.Load)
			ps.Y = append(ps.Y, p.AvgRT)
			fmt.Fprintf(&csv, "%d,%g,%.6g,%.8g,%.6g,%.6g\n",
				s.Hosts, p.Load, p.AvgRT, p.LossFraction, p.Rejuvenations, p.Deferred)
		}
		chart.Series = append(chart.Series, ps)
	}
	if err := writeChartFiles(out, "ext_cluster", &chart, csv.String()); err != nil {
		return err
	}
	fmt.Printf("(ext_cluster in %v)\n\n", time.Since(start).Round(time.Second))
	return nil
}

// runBurstExtension produces the ext_bursts figure: false alarms per
// 100k transactions versus burst factor, with no aging present.
func runBurstExtension(out string, sweep experiment.SweepConfig, seed uint64) error {
	fmt.Println("running ext_bursts: burst tolerance (extension) ...")
	start := time.Now()
	cfg := experiment.BurstSweepConfig{
		Transactions: sweep.Transactions,
		Replications: sweep.Replications,
		Seed:         seed,
	}
	series, err := experiment.RunBurstSweep(cfg)
	if err != nil {
		return err
	}
	chart := plot.Chart{
		Title:  "Extension: false alarms under arrival bursts (no aging present)",
		XLabel: "Burst Factor (arrival-rate multiplier during bursts)",
		YLabel: "False Alarms per 100k Transactions",
	}
	var csv strings.Builder
	csv.WriteString("config,burst_factor,false_alarms_per_100k,loss_fraction\n")
	for _, s := range series {
		ps := plot.Series{Name: s.Spec.Label()}
		for _, p := range s.Points {
			ps.X = append(ps.X, p.Factor)
			ps.Y = append(ps.Y, p.FalseAlarmsPer100k)
			fmt.Fprintf(&csv, "%s,%g,%.6g,%.8g\n",
				s.Spec.Label(), p.Factor, p.FalseAlarmsPer100k, p.LossFraction)
		}
		chart.Series = append(chart.Series, ps)
	}
	if err := writeChartFiles(out, "ext_bursts", &chart, csv.String()); err != nil {
		return err
	}
	fmt.Printf("(ext_bursts in %v)\n\n", time.Since(start).Round(time.Second))
	return nil
}

// writeChartFiles emits the SVG and CSV for an extension figure.
func writeChartFiles(out, id string, chart *plot.Chart, csv string) error {
	svgFile, err := os.Create(filepath.Join(out, id+".svg"))
	if err != nil {
		return err
	}
	if err := chart.WriteSVG(svgFile); err != nil {
		_ = svgFile.Close()
		return err
	}
	if err := svgFile.Close(); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(out, id+".csv"), []byte(csv), 0o644)
}

// writeFigure emits CSV, SVG, and text table for one simulation figure
// and returns the chart so the caller can also render it as ASCII.
func writeFigure(out string, res experiment.FigureResult) (*plot.Chart, error) {
	csvFile, err := os.Create(filepath.Join(out, res.Figure.ID+".csv"))
	if err != nil {
		return nil, err
	}
	if err := res.WriteCSV(csvFile); err != nil {
		_ = csvFile.Close()
		return nil, err
	}
	if err := csvFile.Close(); err != nil {
		return nil, err
	}
	detailFile, err := os.Create(filepath.Join(out, res.Figure.ID+"_detail.csv"))
	if err != nil {
		return nil, err
	}
	if err := res.WriteDetailedCSV(detailFile); err != nil {
		_ = detailFile.Close()
		return nil, err
	}
	if err := detailFile.Close(); err != nil {
		return nil, err
	}

	chart := plot.Chart{
		Title:  fmt.Sprintf("Figure %d: %s", res.Figure.Number, res.Figure.Title),
		XLabel: "Offered Load (CPUs)",
		YLabel: res.Figure.Metric.AxisLabel(),
	}
	for _, s := range res.Series {
		ps := plot.Series{Name: s.Spec.Label()}
		for _, p := range s.Points {
			ps.X = append(ps.X, p.Load)
			ps.Y = append(ps.Y, res.Figure.Metric.Value(p))
		}
		chart.Series = append(chart.Series, ps)
	}
	svgFile, err := os.Create(filepath.Join(out, res.Figure.ID+".svg"))
	if err != nil {
		return nil, err
	}
	if err := chart.WriteSVG(svgFile); err != nil {
		_ = svgFile.Close()
		return nil, err
	}
	if err := svgFile.Close(); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(out, res.Figure.ID+".txt"), []byte(res.Table()), 0o644); err != nil {
		return nil, err
	}
	return &chart, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
