// Command tune grid-searches the rejuvenation algorithm parameters
// (n, K, D) over the e-commerce simulation, scoring each configuration
// by the paper's assessment basis: average response time at high load
// plus transaction loss at low load. It operationalizes the paper's
// concluding suggestion of determining optimal algorithm parameters by
// statistical estimation.
//
// Examples:
//
//	tune -budget 30             # all factorizations of n*K*D = 30 (the paper's Fig. 11-15 space)
//	tune -budget 15 -algo SARAA
//	tune -max-n 6 -max-k 6 -max-d 6 -top 15
package main

import (
	"flag"
	"fmt"
	"os"

	"rejuv/internal/experiment"
)

func main() {
	var (
		algo       = flag.String("algo", "SRAA", "algorithm to tune: SRAA or SARAA")
		budget     = flag.Int("budget", 30, "fixed n*K*D product; 0 searches the -max box instead")
		maxN       = flag.Int("max-n", 8, "free-search bound for n (with -budget 0)")
		maxK       = flag.Int("max-k", 6, "free-search bound for K (with -budget 0)")
		maxD       = flag.Int("max-d", 6, "free-search bound for D (with -budget 0)")
		high       = flag.Float64("high", 9.0, "high assessment load (CPUs)")
		low        = flag.Float64("low", 0.5, "low assessment load (CPUs)")
		rtWeight   = flag.Float64("rt-weight", 1, "cost per second of high-load response time")
		lossWeight = flag.Float64("loss-weight", 100, "cost per unit of low-load loss fraction")
		reps       = flag.Int("reps", 3, "replications per evaluation")
		txns       = flag.Int64("txns", 50_000, "transactions per replication")
		seed       = flag.Uint64("seed", 1, "base random seed (common across candidates)")
		top        = flag.Int("top", 10, "how many configurations to print")
	)
	flag.Parse()

	cfg := experiment.TuneConfig{
		Algorithm:    experiment.Algorithm(*algo),
		Budget:       *budget,
		MaxN:         *maxN,
		MaxK:         *maxK,
		MaxD:         *maxD,
		HighLoad:     *high,
		LowLoad:      *low,
		RTWeight:     *rtWeight,
		LossWeight:   *lossWeight,
		Replications: *reps,
		Transactions: *txns,
		Seed:         *seed,
	}
	n := len(cfg.Candidates())
	fmt.Printf("tuning %s over %d candidates (cost = %.3g*RT@%.1f + %.3g*loss@%.1f)\n\n",
		*algo, n, *rtWeight, *high, *lossWeight, *low)
	results, err := experiment.Tune(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tune:", err)
		os.Exit(1)
	}
	if *top > len(results) {
		*top = len(results)
	}
	fmt.Printf("%4s  %-26s %10s %12s %12s %10s\n",
		"rank", "configuration", "RT@high", "loss@low", "loss@high", "cost")
	for i := 0; i < *top; i++ {
		r := results[i]
		fmt.Printf("%4d  %-26s %10.2f %12.6f %12.6f %10.3f\n",
			i+1, r.Spec.Label(), r.HighRT, r.LowLoss, r.HighLoss, r.Cost)
	}
	worst := results[len(results)-1]
	fmt.Printf("\nworst: %s (cost %.3f)\n", worst.Spec.Label(), worst.Cost)
}
