// Command mmcalc is an analytical calculator for the paper's M/M/c
// results: the Erlang formulas, the response-time distribution (eq. 1)
// and its moments (eq. 2, 3), the phase-type chain of the sample
// average (Fig. 4), its density (eq. 4), and the tail probabilities
// beyond normal quantiles quoted in Section 4.1.
//
// Examples:
//
//	mmcalc                         # paper system: c=16, lambda=1.6, mu=0.2
//	mmcalc -lambda 0.5             # lighter load
//	mmcalc -tails -n 15,30         # Section 4.1 tail table
//	mmcalc -chain -n 2             # print the Fig. 4 CTMC for n=2
//	mmcalc -density -n 30 -x 6.79  # density and CDF of X̄30 at a point
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rejuv/internal/mmc"
	"rejuv/internal/stats"
)

func main() {
	var (
		c       = flag.Int("c", 16, "number of servers")
		lambda  = flag.Float64("lambda", 1.6, "arrival rate (transactions/second)")
		mu      = flag.Float64("mu", 0.2, "service rate per server (transactions/second)")
		ns      = flag.String("n", "15,30", "comma-separated sample sizes")
		tails   = flag.Bool("tails", false, "print tail mass of X̄n beyond the normal quantile")
		level   = flag.Float64("level", 0.975, "normal quantile level for -tails")
		chain   = flag.Bool("chain", false, "print the Fig. 4 absorbing CTMC for the first -n value")
		density = flag.Bool("density", false, "print density and CDF of X̄n at -x for the first -n value")
		x       = flag.Float64("x", 0, "evaluation point for -density")
	)
	flag.Parse()

	sys, err := mmc.New(*c, *lambda, *mu)
	if err != nil {
		fatal(err)
	}
	sizes, err := parseInts(*ns)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("M/M/%d  lambda=%.4g  mu=%.4g  rho=%.4f  offered load=%.2f CPUs\n",
		*c, *lambda, *mu, sys.Rho(), sys.OfferedLoad())
	fmt.Printf("Wc (P[fewer than c jobs])   = %.6f\n", sys.Wc())
	fmt.Printf("Erlang-C (P[wait])          = %.6f\n", sys.ErlangC())
	fmt.Printf("E[X]  (eq. 2)               = %.6f s\n", sys.RTMean())
	fmt.Printf("SD[X] (eq. 3)               = %.6f s\n", sys.RTStdDev())
	fmt.Printf("E[W] (queueing delay)       = %.6f s\n", sys.WaitMean())
	for _, p := range []float64{0.9, 0.95, 0.975, 0.99} {
		q, err := sys.RTQuantile(p)
		fatalIf(err)
		fmt.Printf("%5.3g%% RT quantile           = %.4f s\n", p*100, q)
	}

	if *tails {
		fmt.Printf("\ntail mass of X̄n beyond the %.4g normal quantile:\n", *level)
		nominal := 1 - *level
		for _, n := range sizes {
			tail, err := sys.TailBeyondNormalQuantile(n, *level)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  n=%3d: %.4f%%   (nominal %.4f%%)\n", n, tail*100, nominal*100)
		}
	}

	if *chain && len(sizes) > 0 {
		n := sizes[0]
		ph, err := sys.AvgRTPhaseType(n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nFig. 4 chain for X̄%d: %d transient phases + absorption\n", n, ph.NumPhases())
		fmt.Printf("mean=%.6f var=%.6f (closed form: mean=%.6f var=%.6f)\n",
			ph.Mean(), ph.Var(), sys.RTMean(), sys.RTVar()/float64(n))
		cc, _ := ph.Chain()
		fmt.Printf("states: %d (absorbing: state %d)\n", cc.NumStates(), cc.NumStates())
		for s := 0; s < cc.NumStates(); s++ {
			fmt.Printf("  state %2d exit rate %.4f\n", s+1, cc.ExitRate(s))
		}
	}

	if *density && len(sizes) > 0 {
		n := sizes[0]
		ph, err := sys.AvgRTPhaseType(n)
		if err != nil {
			fatal(err)
		}
		pdf, err := ph.PDF(*x, 0)
		if err != nil {
			fatal(err)
		}
		cdf, err := ph.CDF(*x, 0)
		if err != nil {
			fatal(err)
		}
		m, sd := sys.NormalApprox(n)
		fmt.Printf("\nX̄%d at x=%.6g: density=%.8g cdf=%.8g\n", n, *x, pdf, cdf)
		fmt.Printf("normal approximation:  density=%.8g cdf=%.8g\n",
			stats.NormPDF(*x, m, sd), stats.NormCDF(*x, m, sd))
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid sample size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmcalc:", err)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
