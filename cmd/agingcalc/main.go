// Command agingcalc evaluates the classical Huang et al. software-aging
// CTMC (reference [9] of the paper): steady-state availability and
// long-run cost rate as functions of the rejuvenation rate, plus the
// cost-optimal rate. It is the analytical companion to the paper's
// measurement-driven algorithms: the same question — when to rejuvenate
// — answered from a model instead of from observations.
//
// Rates are per hour. Example:
//
//	agingcalc -aging 0.00417 -failure 0.0139 -repair 0.25 -finish 12 \
//	          -cost-failed 1000 -cost-rejuv 10
package main

import (
	"flag"
	"fmt"
	"os"

	"rejuv/internal/aging"
	"rejuv/internal/num"
)

func main() {
	var (
		agingRate  = flag.Float64("aging", 1.0/240, "aging rate: Robust -> FailureProbable (per hour)")
		failure    = flag.Float64("failure", 1.0/72, "failure rate: FailureProbable -> Failed (per hour)")
		repair     = flag.Float64("repair", 0.25, "repair rate: Failed -> Robust (per hour)")
		finish     = flag.Float64("finish", 12, "rejuvenation finish rate: Rejuvenating -> Robust (per hour)")
		costFailed = flag.Float64("cost-failed", 1000, "cost per hour of unplanned downtime")
		costRejuv  = flag.Float64("cost-rejuv", 10, "cost per hour of planned rejuvenation downtime")
		maxRate    = flag.Float64("max-rate", 10, "upper bound of the rejuvenation-rate search (per hour)")
	)
	flag.Parse()

	m := aging.Model{
		AgingRate:              *agingRate,
		FailureRate:            *failure,
		RepairRate:             *repair,
		RejuvenationFinishRate: *finish,
	}
	fmt.Printf("Huang et al. aging model (rates per hour)\n")
	fmt.Printf("mean time to failure without rejuvenation: %.1f h\n\n", m.MeanTimeToFailure())

	fmt.Printf("%12s %14s %14s\n", "rejuv rate", "availability", "cost rate")
	for _, r := range []float64{0, 0.01, 0.05, 0.1, 0.5, 1, 5} {
		mm := m
		mm.RejuvenationRate = r
		avail, err := mm.Availability()
		fatalIf(err)
		cost, err := mm.CostRate(*costFailed, *costRejuv)
		fatalIf(err)
		fmt.Printf("%12.4g %14.6f %14.4f\n", r, avail, cost)
	}

	rate, cost, err := m.OptimalRejuvenationRate(*costFailed, *costRejuv, *maxRate)
	fatalIf(err)
	if num.Zero(rate) {
		fmt.Printf("\nrejuvenation does not pay at these costs (optimal rate 0, cost %.4f)\n", cost)
		return
	}
	fmt.Printf("\ncost-optimal rejuvenation rate: %.4g/h (mean %.1f h between planned restarts of an aged system), cost rate %.4f\n",
		rate, 1/rate, cost)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "agingcalc:", err)
		os.Exit(1)
	}
}
