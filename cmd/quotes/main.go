// Command quotes measures every numeric value quoted in the paper's
// Section 5 text and prints a paper-vs-measured table, plus the
// analytical values of Section 4.1. It is the automated regression
// behind EXPERIMENTS.md.
//
// Usage:
//
//	quotes [-reps 5] [-txns 100000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"rejuv/internal/experiment"
	"rejuv/internal/mmc"
	"rejuv/internal/stats"
)

func main() {
	var (
		reps     = flag.Int("reps", 5, "replications per point (paper: 5)")
		txns     = flag.Int64("txns", 100_000, "transactions per replication (paper: 100,000)")
		seed     = flag.Uint64("seed", 1, "base random seed")
		markdown = flag.Bool("markdown", false, "emit a Markdown table (for EXPERIMENTS.md)")
	)
	flag.Parse()

	fmt.Println("Section 4.1 — analytical values")
	sys, err := mmc.New(16, 1.6, 0.2)
	fatalIf(err)
	for _, row := range []struct {
		name  string
		paper float64
		got   func() (float64, error)
	}{
		{"tail of X̄15 beyond 97.5% normal quantile (%)", 3.69,
			func() (float64, error) { v, err := sys.TailBeyondNormalQuantile(15, 0.975); return v * 100, err }},
		{"tail of X̄30 beyond 97.5% normal quantile (%)", 3.37,
			func() (float64, error) { v, err := sys.TailBeyondNormalQuantile(30, 0.975); return v * 100, err }},
		{"E[X] at lambda=1.6 (s)", 5,
			func() (float64, error) { return sys.RTMean(), nil }},
		{"SD[X] at lambda=1.6 (s)", 5,
			func() (float64, error) { return sys.RTStdDev(), nil }},
	} {
		v, err := row.got()
		fatalIf(err)
		fmt.Printf("  %-48s paper %8.4g   measured %8.4f   reldiff %5.1f%%\n",
			row.name, row.paper, v, 100*stats.RelDiff(row.paper, v))
	}

	fmt.Printf("\nSection 5 — simulation quotes (%d x %d transactions per point)\n", *reps, *txns)
	cfg := experiment.SweepConfig{
		Replications: *reps,
		Transactions: *txns,
		Seed:         *seed,
	}
	results, err := experiment.EvaluateQuotes(cfg, experiment.PaperQuotes())
	fatalIf(err)
	if *markdown {
		fmt.Println("| source | quantity | paper | measured | rel. diff |")
		fmt.Println("|---|---|---|---|---|")
		for _, r := range results {
			fmt.Printf("| %s | %s | %.6g | %.6g | %.1f%% |\n",
				r.Quote.Source, r.Quote.Label(), r.Quote.Paper, r.Measured,
				100*stats.RelDiff(r.Quote.Paper, r.Measured))
		}
		return
	}
	fmt.Printf("  %-5s %-42s %12s %12s %9s\n", "src", "quantity", "paper", "measured", "reldiff")
	for _, r := range results {
		fmt.Printf("  %-5s %-42s %12.6g %12.6g %8.1f%%\n",
			r.Quote.Source, r.Quote.Label(), r.Quote.Paper, r.Measured,
			100*stats.RelDiff(r.Quote.Paper, r.Measured))
	}
	fmt.Println("\nsee EXPERIMENTS.md for the interpretation of each row, including")
	fmt.Println("the known deviations and their analysis.")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quotes:", err)
		os.Exit(1)
	}
}
