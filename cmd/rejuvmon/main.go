// Command rejuvmon watches a stream of response-time observations (one
// number per line on stdin, seconds by default) and prints a line
// whenever the configured rejuvenation algorithm triggers — optionally
// running a shell command as the rejuvenation action. It turns the
// paper's algorithms into a composable Unix filter:
//
//	tail -f access.log | awk '{print $NF}' | rejuvmon -algo SRAA -n 3 -k 2 -d 5 -mean 0.12 -sd 0.1
//
// With -adaptive N the baseline (mean, sd) is learned from the first N
// observations instead of -mean/-sd.
//
// Exit status is 0 on clean EOF, 1 on input or configuration errors.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rejuv"
)

func main() {
	var (
		algo     = flag.String("algo", "SRAA", "algorithm: SRAA, SARAA, CLTA, Shewhart, EWMA, CUSUM")
		n        = flag.Int("n", 3, "sample size (n_orig for SARAA)")
		k        = flag.Int("k", 2, "number of buckets K")
		d        = flag.Int("d", 5, "bucket depth D")
		quantile = flag.Float64("quantile", 1.96, "CLTA quantile / Shewhart,EWMA limit / CUSUM threshold")
		weight   = flag.Float64("weight", 0.2, "EWMA weight / CUSUM slack")
		mean     = flag.Float64("mean", 0, "baseline mean (required unless -adaptive)")
		sd       = flag.Float64("sd", 0, "baseline standard deviation (required unless -adaptive)")
		adaptive = flag.Int("adaptive", 0, "learn the baseline from the first N observations")
		cooldown = flag.Duration("cooldown", time.Minute, "suppress triggers for this long after one")
		action   = flag.String("exec", "", "shell command to run on each trigger")
		trace    = flag.Bool("trace", false, "log every evaluated sample to stderr (bucket dynamics)")
		quiet    = flag.Bool("q", false, "print only trigger lines, not the startup banner")
	)
	flag.Parse()

	build := func(b rejuv.Baseline) (rejuv.Detector, error) {
		switch strings.ToUpper(*algo) {
		case "SRAA":
			return rejuv.NewSRAA(rejuv.SRAAConfig{SampleSize: *n, Buckets: *k, Depth: *d, Baseline: b})
		case "SARAA":
			return rejuv.NewSARAA(rejuv.SARAAConfig{InitialSampleSize: *n, Buckets: *k, Depth: *d, Baseline: b})
		case "CLTA":
			return rejuv.NewCLTA(rejuv.CLTAConfig{SampleSize: *n, Quantile: *quantile, Baseline: b})
		case "SHEWHART":
			return rejuv.NewShewhart(*quantile, b)
		case "EWMA":
			return rejuv.NewEWMA(*weight, *quantile, b)
		case "CUSUM":
			return rejuv.NewCUSUM(*weight, *quantile, b)
		default:
			return nil, fmt.Errorf("unknown algorithm %q", *algo)
		}
	}

	var detector rejuv.Detector
	var err error
	if *adaptive > 0 {
		detector, err = rejuv.NewAdaptive(*adaptive, build)
	} else {
		detector, err = build(rejuv.Baseline{Mean: *mean, StdDev: *sd})
	}
	fatalIf(err)
	if *trace {
		detector, err = rejuv.NewTracer(detector, os.Stderr)
		fatalIf(err)
	}

	monitor, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector: detector,
		Cooldown: *cooldown,
		OnTrigger: func(t rejuv.Trigger) {
			fmt.Printf("%s TRIGGER observation=%d sample_mean=%g\n",
				t.Time.Format(time.RFC3339), t.Observations, t.Decision.SampleMean)
			if *action != "" {
				cmd := exec.Command("/bin/sh", "-c", *action)
				cmd.Stdout = os.Stdout
				cmd.Stderr = os.Stderr
				if err := cmd.Run(); err != nil {
					fmt.Fprintln(os.Stderr, "rejuvmon: action failed:", err)
				}
			}
		},
	})
	fatalIf(err)

	if !*quiet {
		fmt.Fprintf(os.Stderr, "rejuvmon: %s watching stdin (cooldown %v)\n", *algo, *cooldown)
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	// Label the observe loop so CPU profiles attribute parsing and
	// detector evaluation to this phase.
	pprof.Do(context.Background(), pprof.Labels("rejuv_phase", "observe-loop"), func(context.Context) {
		line := 0
		for scanner.Scan() {
			line++
			text := strings.TrimSpace(scanner.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rejuvmon: line %d: %q is not a number\n", line, text)
				os.Exit(1)
			}
			monitor.Observe(v)
		}
	})
	fatalIf(scanner.Err())
	s := monitor.Stats()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "rejuvmon: %d observations, %d triggers, %d suppressed\n",
			s.Observations, s.Triggers, s.Suppressed)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rejuvmon:", err)
		os.Exit(1)
	}
}
