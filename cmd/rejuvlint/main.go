// Command rejuvlint runs the repository's static-analysis suite
// (internal/lint) over the module and reports findings with
// file:line:col positions. It exits non-zero when anything is found, so
// it can gate scripts/check.sh and CI alike.
//
// Usage:
//
//	rejuvlint [-rules determinism,floatcmp,...] [-list] [-v] [-json] [patterns]
//
// Patterns are package directories relative to the current module:
// "./..." (the default) lints every package, "./internal/des/..." a
// subtree, and "./cmd/figures" a single package. With -json each finding
// is printed as one JSON object per line ({"file","line","col","rule",
// "message"}), the format the CI problem matcher consumes. Findings are
// suppressed per line with a mandatory justification:
//
//	//lint:allow <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rejuv/internal/lint"
)

// jsonDiag is the -json wire format, one object per line.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	var (
		rules  = flag.String("rules", "", "comma-separated rule names to run (default: all)")
		list   = flag.Bool("list", false, "list available rules and exit")
		verb   = flag.Bool("v", false, "also report type-check problems and call-graph statistics")
		asJSON = flag.Bool("json", false, "print findings as JSON objects, one per line")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rejuvlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rejuvlint:", err)
		os.Exit(2)
	}
	pkgs, err = filterPackages(pkgs, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rejuvlint:", err)
		os.Exit(2)
	}
	if *verb {
		for _, p := range pkgs {
			for _, terr := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "rejuvlint: %s: type-check: %v\n", p.Path, terr)
			}
		}
	}

	tree := lint.NewTree(pkgs)
	diags := lint.Analyze(tree, analyzers)
	if *verb {
		g := tree.CallGraph()
		fmt.Fprintf(os.Stderr, "rejuvlint: call graph: %d functions, %d unresolved call sites\n",
			len(g.Nodes), g.Unresolved)
	}
	cwd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		if *asJSON {
			if err := enc.Encode(jsonDiag{
				File:    pos.Filename,
				Line:    pos.Line,
				Col:     pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "rejuvlint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rejuvlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// filterPackages keeps the packages matching any of the patterns,
// resolved relative to the current directory.
func filterPackages(pkgs []*lint.Package, patterns []string) ([]*lint.Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	type matcher struct {
		dir     string
		subtree bool
	}
	matchers := make([]matcher, 0, len(patterns))
	for _, pat := range patterns {
		subtree := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			subtree = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if err != nil {
			return nil, err
		}
		matchers = append(matchers, matcher{dir: abs, subtree: subtree})
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, m := range matchers {
			if p.Dir == m.dir || (m.subtree && strings.HasPrefix(p.Dir, m.dir+string(filepath.Separator))) {
				out = append(out, p)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}
