// Command rejuvlint runs the repository's static-analysis suite
// (internal/lint) over the module and reports findings with
// file:line:col positions. It exits non-zero when anything is found, so
// it can gate scripts/check.sh and CI alike.
//
// Usage:
//
//	rejuvlint [-rules determinism,floatcmp,...] [-list] [-v] [patterns]
//
// Patterns are package directories relative to the current module:
// "./..." (the default) lints every package, "./internal/des/..." a
// subtree, and "./cmd/figures" a single package. Findings are suppressed
// per line with a mandatory justification:
//
//	//lint:allow <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rejuv/internal/lint"
)

func main() {
	var (
		rules = flag.String("rules", "", "comma-separated rule names to run (default: all)")
		list  = flag.Bool("list", false, "list available rules and exit")
		verb  = flag.Bool("v", false, "also report packages with type-check problems")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rejuvlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rejuvlint:", err)
		os.Exit(2)
	}
	pkgs, err = filterPackages(pkgs, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rejuvlint:", err)
		os.Exit(2)
	}
	if *verb {
		for _, p := range pkgs {
			for _, terr := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "rejuvlint: %s: type-check: %v\n", p.Path, terr)
			}
		}
	}

	diags := lint.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rejuvlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// filterPackages keeps the packages matching any of the patterns,
// resolved relative to the current directory.
func filterPackages(pkgs []*lint.Package, patterns []string) ([]*lint.Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	type matcher struct {
		dir     string
		subtree bool
	}
	matchers := make([]matcher, 0, len(patterns))
	for _, pat := range patterns {
		subtree := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			subtree = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if err != nil {
			return nil, err
		}
		matchers = append(matchers, matcher{dir: abs, subtree: subtree})
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, m := range matchers {
			if p.Dir == m.dir || (m.subtree && strings.HasPrefix(p.Dir, m.dir+string(filepath.Separator))) {
				out = append(out, p)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}
