// Command rejuvtrace inspects flight-recorder journals written by
// rejuvsim -journal, the rejuv library or examples/httpserver: it
// renders an ASCII (or CSV) timeline of the decisions around each
// rejuvenation trigger, aggregates per-phase statistics, verifies the
// journal by deterministic replay, and diffs two journals.
//
// Examples:
//
//	rejuvtrace run.jnl                  timeline around each trigger
//	rejuvtrace -window 16 run.jnl       more context per trigger
//	rejuvtrace -phases run.jnl          per-phase statistics only
//	rejuvtrace -csv run.jnl             machine-readable timeline
//	rejuvtrace -verify run.jnl          replay and verify determinism
//	rejuvtrace -diff a.jnl b.jnl        first divergence between runs
//	rejuvtrace -trigger 0x9a… run.jnl   causality chain of one trigger id
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"rejuv/internal/core"
	"rejuv/internal/experiment"
	"rejuv/internal/journal"
)

func main() {
	var (
		window  = flag.Int("window", 8, "decision records of context shown per trigger")
		csv     = flag.Bool("csv", false, "emit the trigger windows as CSV instead of an ASCII timeline")
		phases  = flag.Bool("phases", false, "print per-phase statistics only")
		verify  = flag.Bool("verify", false, "rebuild the detector from the journal's spec and verify the decision stream by replay")
		diff    = flag.Bool("diff", false, "compare two journals and report the first diverging decision")
		maxEv   = flag.Int("triggers", 0, "show at most this many triggers (0 = all)")
		barCols = flag.Int("bar", 24, "width of the sample-mean bar in the ASCII timeline (0 disables)")
		trigger = flag.String("trigger", "", "render the causality chain of one trigger `id` (decimal or 0x hex)")
	)
	flag.Parse()

	switch {
	case *diff:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two journal files, got %d", flag.NArg()))
		}
		runDiff(flag.Arg(0), flag.Arg(1), *window)
	case flag.NArg() != 1:
		fmt.Fprintln(os.Stderr, "usage: rejuvtrace [flags] journal-file")
		flag.PrintDefaults()
		os.Exit(2)
	case *verify:
		runVerify(flag.Arg(0))
	case *trigger != "":
		runTrigger(flag.Arg(0), *trigger, *window)
	default:
		meta, format, records := load(flag.Arg(0))
		a := journal.Analyze(meta, format, records, *window)
		printSummary(a)
		if *phases {
			printPhases(a.Phases())
			return
		}
		events := a.Events
		if *maxEv > 0 && len(events) > *maxEv {
			fmt.Printf("(showing first %d of %d triggers; raise -triggers)\n", *maxEv, len(events))
			events = events[:*maxEv]
		}
		if *csv {
			printCSV(events)
		} else {
			printRebaselines(a.RebaselineEvents)
			for _, ev := range events {
				printTimeline(ev, *barCols)
			}
			printActions(a.Actions)
			printPhases(a.Phases())
		}
	}
}

// load decodes a journal file completely. It tolerates a torn final
// record — a crash mid-write must not make the rest of the flight
// recorder unreadable — and prints a salvage note when bytes were
// dropped.
func load(path string) (journal.Meta, journal.Format, []journal.Record) {
	f, err := os.Open(path)
	fatalIfErr(err)
	defer f.Close()
	jr, err := journal.NewReader(f)
	fatalIfErr(err)
	jr.TolerateTornTail()
	records, err := jr.ReadAll()
	fatalIfErr(err)
	if n := jr.TornBytes(); n > 0 {
		fmt.Fprintf(os.Stderr, "rejuvtrace: note: journal tail was torn; salvaged %d records, dropped %d trailing byte(s)\n",
			len(records), n)
	}
	return jr.Meta(), jr.Format(), records
}

// printSummary renders the journal header and record census.
func printSummary(a journal.Analysis) {
	m := a.Meta
	fmt.Printf("journal: %s", orUnknown(m.Detector))
	if m.CreatedBy != "" {
		fmt.Printf("  (recorded by %s)", m.CreatedBy)
	}
	fmt.Println()
	if m.Notes != "" || m.Seed != 0 {
		fmt.Printf("         seed=%d  %s\n", m.Seed, m.Notes)
	}
	fmt.Printf("%d records, %d reps, %.6g s of virtual time\n", a.Records, a.Reps, a.Duration)
	fmt.Printf("observations %d   decisions %d   triggers %d (+%d suppressed)   resets %d\n",
		a.Observations, a.Decisions, a.Triggers, a.Suppressed, a.Resets)
	fmt.Printf("rejuvenations %d (killed %d)   GCs %d   kernel events %d\n",
		a.Rejuvenations, a.Killed, a.GCs, a.KernelEvents)
	if a.Rebaselines > 0 {
		fmt.Printf("rebaselines %d (workload shifts absorbed without rejuvenating)\n", a.Rebaselines)
	}
	if a.Faults > 0 {
		parts := make([]string, len(a.FaultClasses))
		for i, fc := range a.FaultClasses {
			parts[i] = fmt.Sprintf("%s %d", fc.Class, fc.N)
		}
		fmt.Printf("faults %d   (%s)\n", a.Faults, strings.Join(parts, ", "))
	}
	printSchedCensus(a.Sched)
	fmt.Println()
}

// printSchedCensus renders the scheduling layer's summary: the census
// line, the action-tier mix, the deferral reasons, and the quarantine
// timeline. Silent for journals without a scheduler.
func printSchedCensus(s journal.SchedCensus) {
	if s.Records == 0 {
		return
	}
	fmt.Printf("scheduler %d records: %d enqueued (+%d coalesced), %d deferrals, %d starts, %d completes\n",
		s.Records, s.Enqueues, s.Coalesces, s.Defers, s.Starts, s.Completes)
	if len(s.StartsByTier) > 0 {
		parts := make([]string, len(s.StartsByTier))
		for i, tc := range s.StartsByTier {
			parts[i] = fmt.Sprintf("%s %d", tc.Tier, tc.N)
		}
		fmt.Printf("  action tiers: %s\n", strings.Join(parts, ", "))
	}
	if len(s.DefersByReason) > 0 {
		parts := make([]string, len(s.DefersByReason))
		for i, rc := range s.DefersByReason {
			parts[i] = fmt.Sprintf("%s %d", rc.Reason, rc.N)
		}
		fmt.Printf("  deferral reasons: %s\n", strings.Join(parts, ", "))
	}
	for _, r := range s.QuarantineEvents {
		if r.Kind == journal.KindSchedQuarantine {
			fmt.Printf("  QUARANTINE  t=%.6g s  replica %d  (%s)\n", r.Time, r.Stream, r.Class)
		} else {
			fmt.Printf("  readmitted  t=%.6g s  replica %d\n", r.Time, r.Stream)
		}
	}
}

// printActions renders the actuator retry timeline: one block per
// execution with every attempt, its outcome and the backoff chosen
// after a failure.
func printActions(actions []journal.ActionEvent) {
	if len(actions) == 0 {
		return
	}
	fmt.Printf("actuator executions: %d\n", len(actions))
	for _, ev := range actions {
		verdict := "gave up"
		if ev.Succeeded() {
			verdict = "succeeded"
		}
		id := ""
		if ev.TriggerID != 0 {
			id = fmt.Sprintf("  id=%#x", ev.TriggerID)
		}
		fmt.Printf("action #%d  rep %d  t=%.6g s  %s after %d attempt(s)%s\n",
			ev.Index, ev.Rep, ev.Start, verdict, len(ev.Attempts), id)
		for i, at := range ev.Attempts {
			status := "ok"
			if !at.OK {
				status = "FAIL"
				if at.Class != "" {
					status += "  " + at.Class
				}
			}
			fmt.Printf("  attempt %d  t=%.6g s  %s\n", i+1, at.Time, status)
			if !at.OK && at.Backoff > 0 {
				fmt.Printf("             retry in %.4g s\n", at.Backoff)
			}
		}
		if ev.GaveUp {
			fmt.Printf("  GIVE UP  t=%.6g s  escalated after %d attempt(s)\n", ev.End, len(ev.Attempts))
		}
	}
	fmt.Println()
}

// runTrigger renders the causality chain of one trigger id: the
// observations that fed the decision, the decision, and the actuator
// executions it provoked. Ids are printed by the default timeline
// (id=0x…) and minted deterministically, so a chain seen in one run can
// be looked up in a replay of the same journal. Exit status 1 when no
// record carries the id.
func runTrigger(path, idText string, window int) {
	id, err := strconv.ParseUint(idText, 0, 64)
	if err != nil {
		fatal(fmt.Errorf("bad -trigger id %q: %v", idText, err))
	}
	_, _, records := load(path)
	c, ok := journal.TraceCausality(records, id, window)
	if !ok {
		fatal(fmt.Errorf("no decision in %s carries trigger id %#x", path, id))
	}
	fmt.Printf("trigger id %#x\n", c.TriggerID)
	if c.Fleet {
		class := c.Class
		if class == "" {
			class = "(unknown class)"
		}
		fmt.Printf("stream %d  %s\n", c.Stream, class)
	}
	fmt.Printf("\nobservations (%d, newest last):\n", len(c.Observations))
	for _, r := range c.Observations {
		fmt.Printf("  t=%-10.6g value=%.6g\n", r.Time, r.Value)
	}
	d := c.Decision
	verdict := "TRIGGER"
	if d.Suppressed {
		verdict = "TRIGGER (suppressed by cooldown)"
	}
	fmt.Printf("\ndecision:\n  t=%-10.6g mean=%.6g target=%.6g lvl=%d fill=%d  %s\n",
		d.Time, d.SampleMean, d.Target, d.Level, d.Fill, verdict)
	if len(c.Actions) == 0 {
		fmt.Println("\nactuation: none journaled for this id")
		return
	}
	fmt.Println("\nactuation:")
	for _, ev := range c.Actions {
		verdict := "gave up"
		if ev.Succeeded() {
			verdict = "succeeded"
		}
		fmt.Printf("  execution t=%.6g s  %s after %d attempt(s)\n", ev.Start, verdict, len(ev.Attempts))
		for i, at := range ev.Attempts {
			status := "ok"
			if !at.OK {
				status = "FAIL"
				if at.Class != "" {
					status += "  " + at.Class
				}
			}
			fmt.Printf("    attempt %d  t=%.6g s  %s\n", i+1, at.Time, status)
			if !at.OK && at.Backoff > 0 {
				fmt.Printf("               retry in %.4g s\n", at.Backoff)
			}
		}
		if ev.GaveUp {
			fmt.Printf("    GIVE UP  t=%.6g s  escalated after %d attempt(s)\n", ev.End, len(ev.Attempts))
		}
	}
}

// printRebaselines renders the workload-shift rebaseline timeline: when
// the detector re-anchored its baseline instead of rejuvenating, and to
// what.
func printRebaselines(events []journal.Record) {
	if len(events) == 0 {
		return
	}
	fmt.Printf("rebaselines: %d\n", len(events))
	for i, r := range events {
		stream := ""
		if r.Kind == journal.KindStreamRebaseline {
			stream = fmt.Sprintf("  stream %d", r.Stream)
		}
		fmt.Printf("  rebaseline #%d  t=%.6g s  baseline -> mean=%.6g sd=%.6g%s\n",
			i+1, r.Time, r.BaseMean, r.BaseStdDev, stream)
	}
	fmt.Println()
}

// printTimeline renders one trigger's context window as an ASCII table
// with a sample-mean bar scaled to the window's maximum.
func printTimeline(ev journal.TriggerEvent, barCols int) {
	fmt.Printf("trigger #%d  rep %d  t=%.6g s  (seq %d)", ev.Index, ev.Rep, ev.Time, ev.Seq)
	if ev.TriggerID != 0 {
		fmt.Printf("  id=%#x", ev.TriggerID)
	}
	fmt.Println()
	if !math.IsNaN(ev.TimeToTrigger) {
		fmt.Printf("  first exceedance t=%.6g s -> trigger after %.6g s\n", ev.FirstExceedance, ev.TimeToTrigger)
	}
	if ev.Suppressed > 0 || ev.GCs > 0 {
		fmt.Printf("  in phase: %d suppressed trigger(s), %d full GC(s)\n", ev.Suppressed, ev.GCs)
	}
	if len(ev.Dwell) > 0 {
		parts := make([]string, len(ev.Dwell))
		for lvl, d := range ev.Dwell {
			parts[lvl] = fmt.Sprintf("L%d %.4gs", lvl, d)
		}
		fmt.Printf("  bucket dwell: %s\n", strings.Join(parts, "  "))
	}
	maxMean := 0.0
	for _, r := range ev.Window {
		if r.SampleMean > maxMean {
			maxMean = r.SampleMean
		}
	}
	fmt.Printf("  %12s %10s %10s %4s %4s  %s\n", "t(s)", "mean", "target", "lvl", "fill", "")
	for _, r := range ev.Window {
		flagStr := ""
		switch {
		case r.Triggered && r.Suppressed:
			flagStr = "TRIGGER (suppressed)"
		case r.Triggered:
			flagStr = "TRIGGER"
		}
		bar := ""
		if barCols > 0 && maxMean > 0 && r.SampleMean > 0 {
			n := int(r.SampleMean / maxMean * float64(barCols))
			if n > barCols {
				n = barCols
			}
			bar = strings.Repeat("#", n) + " "
		}
		fmt.Printf("  %12.6g %10.4g %10.4g %4d %4d  %s%s\n",
			r.Time, r.SampleMean, r.Target, r.Level, r.Fill, bar, flagStr)
	}
	fmt.Println()
}

// printCSV renders the trigger windows as CSV, one row per decision.
func printCSV(events []journal.TriggerEvent) {
	fmt.Println("trigger,rep,seq,t,sample_mean,target,level,fill,triggered,suppressed")
	for _, ev := range events {
		for _, r := range ev.Window {
			fmt.Printf("%d,%d,%d,%.9g,%.9g,%.9g,%d,%d,%t,%t\n",
				ev.Index, ev.Rep, r.Seq, r.Time, r.SampleMean, r.Target,
				r.Level, r.Fill, r.Triggered, r.Suppressed)
		}
	}
}

// printPhases renders the aggregate phase statistics.
func printPhases(ps journal.PhaseStats) {
	fmt.Printf("phases: %d trigger(s), %d suppressed in total\n", ps.Triggers, ps.SuppressedTotal)
	if ps.TimeToTrigger.N > 0 {
		t := ps.TimeToTrigger
		fmt.Printf("time from first exceedance to trigger: min %.6g s  mean %.6g s  max %.6g s  (n=%d)\n",
			t.Min, t.Mean, t.Max, t.N)
	}
	if len(ps.DwellMean) > 0 {
		parts := make([]string, len(ps.DwellMean))
		for lvl, d := range ps.DwellMean {
			parts[lvl] = fmt.Sprintf("L%d %.4gs", lvl, d)
		}
		fmt.Printf("mean bucket dwell per phase: %s\n", strings.Join(parts, "  "))
	}
}

// runVerify replays the journal against a detector rebuilt from its
// embedded spec and reports the verdict. Exit status 1 on divergence.
func runVerify(path string) {
	f, err := os.Open(path)
	fatalIfErr(err)
	defer f.Close()
	jr, err := journal.NewReader(f)
	fatalIfErr(err)
	meta := jr.Meta()
	if meta.Spec == "" {
		fatal(fmt.Errorf("journal %s has no embedded detector spec; record it with rejuvsim -journal", path))
	}
	var spec experiment.Spec
	fatalIfErr(json.Unmarshal([]byte(meta.Spec), &spec))
	factory := func() (core.Detector, error) {
		det, err := spec.NewDetector()
		if err == nil && det == nil {
			return nil, fmt.Errorf("spec %q builds no detector", spec.Label())
		}
		return det, err
	}
	rep, err := journal.Replay(jr, factory)
	fatalIfErr(err)
	fmt.Printf("replayed %s: %d reps, %d observations, %d decisions, %d triggers, %d resets\n",
		spec.Label(), rep.Reps, rep.Observations, rep.Decisions, rep.Triggers, rep.Resets)
	if rep.Rebaselines > 0 {
		fmt.Printf("rebaselines verified: %d\n", rep.Rebaselines)
	}
	if rep.Identical() {
		fmt.Println("verdict: decision stream is byte-identical under replay")
		return
	}
	fmt.Println("verdict: DIVERGED:", rep.Mismatch.Error())
	os.Exit(1)
}

// runDiff compares two journals and reports where they part ways.
func runDiff(pathA, pathB string, window int) {
	metaA, _, recsA := load(pathA)
	metaB, _, recsB := load(pathB)
	rep := journal.Diff(metaA, recsA, metaB, recsB, window)
	fmt.Printf("A: %s  %d decisions, %d triggers, %.6g s\n",
		orUnknown(metaA.Detector), rep.A.Decisions, rep.A.Triggers, rep.A.Duration)
	fmt.Printf("B: %s  %d decisions, %d triggers, %.6g s\n",
		orUnknown(metaB.Detector), rep.B.Decisions, rep.B.Triggers, rep.B.Duration)
	fmt.Printf("%d leading decisions identical\n", rep.CommonDecisions)
	if rep.Divergence == nil {
		if rep.A.Decisions == rep.B.Decisions {
			fmt.Println("journals agree on every decision")
		} else {
			fmt.Println("one journal is a strict prefix of the other; no divergence within the common prefix")
		}
		return
	}
	d := rep.Divergence
	fmt.Printf("first divergence at decision ordinal %d:\n", d.Ordinal)
	fmt.Printf("  A: %s\n  B: %s\n", diffLine(d.A), diffLine(d.B))
	os.Exit(1)
}

// diffLine renders every detector-owned field of a decision record, so
// the divergence is visible even when it sits in the sample-size or
// chart-statistic internals.
func diffLine(r journal.Record) string {
	return fmt.Sprintf("t=%.9g mean=%.9g target=%.9g lvl=%d fill=%d n=%d/%d stat=%.9g triggered=%t",
		r.Time, r.SampleMean, r.Target, r.Level, r.Fill,
		r.SampleFill, r.SampleSize, r.Statistic, r.Triggered)
}

// orUnknown substitutes a placeholder for an empty detector label.
func orUnknown(s string) string {
	if s == "" {
		return "(unknown detector)"
	}
	return s
}

// fatalIfErr aborts on err.
func fatalIfErr(err error) {
	if err != nil {
		fatal(err)
	}
}

// fatal prints err and exits.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rejuvtrace:", err)
	os.Exit(1)
}
