package main

import (
	"bytes"
	"fmt"
	"os"
	"sort"

	"rejuv/internal/core"
	"rejuv/internal/ecommerce"
	"rejuv/internal/experiment"
	"rejuv/internal/journal"
	"rejuv/internal/sched"
)

// Cluster demo mode (-cluster): the same aging cluster is run under
// the legacy always-full-restart policy (one host down, every action a
// complete restart) and under the cost-aware scheduler (three-tier
// Kijima ladder, capacity floor, deadline-aware deferral, proactive
// partial actions at moderate aging), with identical detectors and
// workload. The scheduled run is journaled and the schedule is
// replay-verified byte-identically, including the capacity-budget
// high-water mark.

// clusterOpts carries the -cluster flags.
type clusterOpts struct {
	hosts       int
	spec        experiment.Spec
	load        float64 // offered CPUs per host
	txns        int64
	seed        uint64
	pause       float64
	leaky       bool
	journalPath string
}

// runClusterDemo executes the comparison and prints the verdict.
func runClusterDemo(opts clusterOpts) {
	if opts.pause <= 0 {
		opts.pause = 30 // a free restart makes the cost comparison vacuous
	}
	lambda := float64(opts.hosts) * opts.load * 0.2

	fmt.Printf("cluster demo: %d hosts, lambda=%.4g/s (%.4g CPUs offered per host), %d transactions, seed %d\n",
		opts.hosts, lambda, opts.load, opts.txns, opts.seed)
	gcNote := "reclaiming GC"
	if opts.leaky {
		gcNote = "leaky GC (only rejuvenation restores the heap)"
	}
	fmt.Printf("detector per host: %s  baseline mean=%.4g sd=%.4g  %s\n\n",
		opts.spec.Label(), opts.spec.Baseline.Mean, opts.spec.Baseline.StdDev, gcNote)

	full := sched.OneDown(opts.hosts, opts.pause)
	part := sched.Scheduled(opts.hosts, opts.pause)
	fmt.Printf("policy A (full):      at most %d host down, every action a full restart (%.4g s pause)\n",
		full.MaxDown, opts.pause)
	fmt.Printf("policy B (scheduled): at most %d host down, %s, capacity floor %.2g, max-defer %.4g s,\n",
		part.MaxDown, tierLadder(part.Tiers), part.CapacityFloor, part.MaxDefer)
	fmt.Printf("                      proactive partial actions from level 3, deadline-aware deferral\n\n")

	resFull, _, _ := runClusterPolicy(opts, full, false, nil, nil)
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{
		CreatedBy: "rejuvsim",
		Detector:  opts.spec.Label(),
		Seed:      opts.seed,
		Notes: fmt.Sprintf("cluster=%d load=%.4g txns=%d pause=%.4g leaky=%v",
			opts.hosts, opts.load, opts.txns, opts.pause, opts.leaky),
	})
	tiers := map[string]int{}
	resPart, policy, maxDown := runClusterPolicy(opts, part, true, jw, func(tr sched.Transition) {
		if tr.Op == sched.OpStart {
			tiers[tr.Tier.Name]++
		}
	})
	fatalIf(jw.Err())

	printClusterResult("A full restarts", resFull)
	printClusterResult("B scheduled", resPart)

	fmt.Printf("\naction mix (policy B): %s\n", tierMix(tiers))
	fmt.Printf("capacity budget: max %d host down allowed, observed high-water %d — never exceeded\n",
		policy.MaxDown, maxDown)

	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	fatalIf(err)
	report, err := journal.ReplaySched(jr, policy)
	fatalIf(err)
	if !report.Identical() {
		fatalIf(fmt.Errorf("scheduled run diverged under replay: %v", report.Mismatch))
	}
	for _, down := range report.MaxDownSeen {
		if down > policy.MaxDown {
			fatalIf(fmt.Errorf("replay saw %d hosts down, budget %d", down, policy.MaxDown))
		}
	}
	fmt.Printf("replay: %d scheduler records (%d starts, %d deferrals, %d coalesces) verified byte-identical, budget respected\n",
		report.Records, report.Starts, report.Defers, report.Coalesces)

	if resPart.Lost < resFull.Lost {
		fmt.Printf("\nscheduled partial rejuvenation lost %d transactions vs %d under full restarts (%.1f%% less)\n",
			resPart.Lost, resFull.Lost, 100*(1-float64(resPart.Lost)/float64(resFull.Lost)))
		fmt.Printf("and completed %d vs %d — the backlog the full-restart policy kills, the scheduled policy serves\n",
			resPart.Completed, resFull.Completed)
	} else {
		fmt.Printf("\nscheduled policy lost %d transactions vs %d under full restarts\n",
			resPart.Lost, resFull.Lost)
	}

	if opts.journalPath != "" {
		fatalIf(os.WriteFile(opts.journalPath, buf.Bytes(), 0o644))
		fmt.Printf("journal: %s (%d records, binary)\n", opts.journalPath, jw.Seq())
	}
}

// runClusterPolicy runs one cluster simulation under the given policy.
// With a journal writer the full flight record is captured — per-host
// observations, decisions, GCs and every scheduler transition. It
// returns the result, the defaulted policy actually in effect, and the
// observed down high-water mark.
func runClusterPolicy(opts clusterOpts, policy sched.Config, scheduled bool, jw *journal.Writer, onTr func(sched.Transition)) (ecommerce.ClusterResult, sched.Config, int) {
	factory := func(int) (core.Detector, error) { return opts.spec.NewDetector() }
	cfg := ecommerce.ClusterConfig{
		Hosts:             opts.hosts,
		Host:              ecommerce.Config{LeakyGC: opts.leaky},
		ArrivalRate:       float64(opts.hosts) * opts.load * 0.2,
		Routing:           ecommerce.RouteLeastActive,
		RejuvenationPause: opts.pause,
		Scheduler:         &policy,
		Transactions:      opts.txns,
		Seed:              opts.seed,
	}
	if scheduled {
		// The tiered policy earns its keep through early cheap actions
		// and QoS-aware timing; the full-restart baseline reacts to
		// delivered triggers only, like the legacy cluster.
		cfg.ProactiveLevel = 3
		cfg.DeadlineAware = true
	}
	c, err := ecommerce.NewCluster(cfg, factory)
	fatalIf(err)
	c.OnTransition = onTr
	if jw != nil {
		c.Journal(jw)
	}
	res, err := c.Run()
	fatalIf(err)
	return res, c.SchedulerConfig(), c.MaxDownSeen()
}

// printClusterResult renders one policy's outcome line. Note the
// survivorship asymmetry when comparing avg RT across policies: a
// policy that kills its backlog at every restart excludes exactly the
// longest-waiting transactions from the RT statistic.
func printClusterResult(name string, r ecommerce.ClusterResult) {
	fmt.Printf("%-18s completed %6d   lost %6d (loss %.4f)   avg RT %7.3f s   rejuvenations %3d (%d partial)   deferred %d\n",
		name, r.Completed, r.Lost, r.LossFraction(), r.AvgRT(), r.Rejuvenations, r.Partial, r.Deferred)
}

// tierLadder renders a tier list as "minor ρ=0.25/medium ρ=0.5/major ρ=1".
func tierLadder(tiers []sched.Tier) string {
	s := ""
	for i, t := range tiers {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprintf("%s ρ=%.4g", t.Name, t.Rho)
	}
	return s + " ladder"
}

// tierMix renders per-tier start counts in a stable order.
func tierMix(counts map[string]int) string {
	if len(counts) == 0 {
		return "no actions dispatched"
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d %s", counts[n], n)
	}
	return s
}
