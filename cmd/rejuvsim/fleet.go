package main

import (
	"bufio"
	"fmt"
	"os"
	"time"

	"rejuv/internal/core"
	"rejuv/internal/fleet"
	"rejuv/internal/journal"
	"rejuv/internal/xrand"
)

// fleetOpts parameterizes the -fleet mode: a synthetic fleet of
// response-time streams, a deterministic fraction of which degrade
// mid-run, driven through the batched fleet engine.
type fleetOpts struct {
	streams       int
	rounds        int
	batch         int
	aging         float64
	seed          uint64
	hygiene       core.Hygiene
	journalPath   string
	journalFormat string
}

// fleetClasses is the class mix of the synthetic fleet: one class per
// paper algorithm, so one run shows the detection-latency trade-off
// between them. All share the SLA baseline (mean 5 s, sd 1 s).
func fleetClasses() []fleet.ClassConfig {
	base := core.Baseline{Mean: 5, StdDev: 1}
	return []fleet.ClassConfig{
		{Name: "web-sraa", Family: fleet.FamilySRAA, SampleSize: 4, Buckets: 3, Depth: 2, Baseline: base},
		{Name: "db-saraa", Family: fleet.FamilySARAA, SampleSize: 8, Buckets: 3, Depth: 2, Baseline: base},
		{Name: "cache-clta", Family: fleet.FamilyCLTA, SampleSize: 4, Quantile: 4, Baseline: base},
	}
}

// classLabel renders a class the way spec labels read elsewhere in the
// CLI.
func classLabel(c fleet.ClassConfig) string {
	switch c.Family {
	case fleet.FamilyCLTA:
		return fmt.Sprintf("CLTA (n=%d, q=%.1f)", c.SampleSize, c.Quantile)
	case fleet.FamilySARAA:
		return fmt.Sprintf("SARAA (n=%d, K=%d, D=%d)", c.SampleSize, c.Buckets, c.Depth)
	default:
		return fmt.Sprintf("SRAA (n=%d, K=%d, D=%d)", c.SampleSize, c.Buckets, c.Depth)
	}
}

// virtualClock is the engine clock of the fleet demo: it advances one
// microsecond per reading, so triggers, cooldowns and journal
// timestamps are reproducible while wall time is measured separately.
type virtualClock struct{ t time.Time }

func (c *virtualClock) now() time.Time {
	c.t = c.t.Add(time.Microsecond)
	return c.t
}

// runFleet is the -fleet mode: open N streams over the three demo
// classes, feed every stream once per round in id order (so detection
// latency is measured in rounds = observations per stream), degrade a
// deterministic subset mid-run, and report throughput, detections and
// per-class detection latency.
func runFleet(o fleetOpts) {
	classes := fleetClasses()

	var jw *journal.Writer
	var journalBuf *bufio.Writer
	var journalFile *os.File
	if o.journalPath != "" {
		meta := journal.Meta{
			CreatedBy: "rejuvsim",
			Detector:  "fleet (web-sraa, db-saraa, cache-clta)",
			Seed:      o.seed,
			Notes:     fmt.Sprintf("fleet=%d rounds=%d aging=%.4g", o.streams, o.rounds, o.aging),
		}
		f, err := os.Create(o.journalPath)
		fatalIf(err)
		journalFile = f
		journalBuf = bufio.NewWriter(f)
		switch o.journalFormat {
		case "binary":
			jw = journal.NewWriter(journalBuf, meta)
		case "jsonl":
			jw = journal.NewJSONWriter(journalBuf, meta)
		default:
			fatalIf(fmt.Errorf("unknown -journal-format %q (want binary or jsonl)", o.journalFormat))
		}
	}

	clock := &virtualClock{t: time.Unix(0, 0)}
	depth := o.streams
	if depth > 1<<16 {
		depth = 1 << 16
	}
	eng, err := fleet.New(fleet.Config{
		Classes:    classes,
		Cooldown:   time.Hour, // virtual: each degraded stream triggers once
		Hygiene:    o.hygiene,
		Now:        clock.now,
		Journal:    jw,
		QueueDepth: depth,
	})
	fatalIf(err)
	defer eng.Close()

	perClass := make([]int, len(classes))
	for i := 0; i < o.streams; i++ {
		ci := i % len(classes)
		fatalIf(eng.OpenStream(fleet.StreamID(i+1), classes[ci].Name))
		perClass[ci]++
	}

	// Every stride-th stream degrades: at the onset round its response
	// time steps up by 4 s and then ramps 0.1 s per round, the paper's
	// soft aging shape.
	stride := o.streams + 1 // no aging
	if o.aging > 0 {
		stride = int(1 / o.aging)
		if stride < 1 {
			stride = 1
		}
	}
	onset := o.rounds / 5
	agingSet := make([]bool, o.streams+1)
	agingCount := 0
	for id := stride; id <= o.streams; id += stride {
		agingSet[id] = true
		agingCount++
	}

	fmt.Printf("fleet: %d streams over %d classes, %d rounds (1 obs/stream/round), batch %d\n",
		o.streams, len(classes), o.rounds, o.batch)
	for ci, c := range classes {
		fmt.Printf("  %-11s %*d streams  %s\n", c.Name, 7, perClass[ci], classLabel(c))
	}
	if agingCount > 0 {
		fmt.Printf("aging: %d streams step +4.0 s then +0.1 s/round from round %d\n", agingCount, onset)
	}

	// Trigger accounting, drained after every batch so the bounded queue
	// never fills: first trigger per aging stream gives its detection
	// latency; triggers on healthy streams are false positives.
	firstTrigger := make([]int, o.streams+1) // round+1 of first trigger; 0 = none
	spurious := 0
	drain := func(round int) {
		for {
			select {
			case tr := <-eng.Triggers():
				if firstTrigger[tr.Stream] == 0 {
					firstTrigger[tr.Stream] = round + 1
					if !agingSet[tr.Stream] {
						spurious++
					}
				}
			default:
				return
			}
		}
	}

	rng := xrand.NewStream(o.seed, 1)
	batch := make([]fleet.StreamObs, 0, o.batch)
	total := 0
	start := time.Now()
	for round := 0; round < o.rounds; round++ {
		for id := 1; id <= o.streams; id++ {
			v := 5 + (2*rng.Float64() - 1) // healthy: uniform on [4, 6]
			if agingSet[id] && round >= onset {
				v += 4 + 0.1*float64(round-onset)
			}
			batch = append(batch, fleet.StreamObs{Stream: fleet.StreamID(id), Value: v})
			if len(batch) == o.batch {
				eng.ObserveBatch(batch)
				total += len(batch)
				batch = batch[:0]
				drain(round)
			}
		}
		if len(batch) > 0 { // round boundary: latency stays in whole rounds
			eng.ObserveBatch(batch)
			total += len(batch)
			batch = batch[:0]
		}
		drain(round)
	}
	elapsed := time.Since(start)

	detected := 0
	latency := newLatencyTally(len(classes))
	for id := 1; id <= o.streams; id++ {
		if !agingSet[id] || firstTrigger[id] == 0 {
			continue
		}
		detected++
		latency.add((id-1)%len(classes), firstTrigger[id]-1-onset)
	}

	st := eng.Stats()
	fmt.Printf("\ningested %d observations in %v (%s)\n",
		total, elapsed.Round(time.Millisecond), obsRate(total, elapsed))
	fmt.Printf("triggers: %d of %d aging streams detected, %d spurious, %d suppressed repeats, %d dropped\n",
		detected, agingCount, spurious, st.Suppressed, st.DroppedTriggers)
	if detected > 0 {
		fmt.Printf("detection latency (rounds after onset): mean %.1f  min %d  max %d\n",
			latency.mean(), latency.min, latency.max)
		for ci, c := range classes {
			if latency.n[ci] > 0 {
				fmt.Printf("  %-11s mean %5.1f rounds over %d detections\n",
					c.Name, latency.classMean(ci), latency.n[ci])
			}
		}
	}

	if jw != nil {
		fatalIf(jw.Err())
		fatalIf(journalBuf.Flush())
		fatalIf(journalFile.Close())
		fmt.Printf("journal: %s (%d records, %s), verifying replay... ", o.journalPath, jw.Seq(), o.journalFormat)
		verifyFleetJournal(o.journalPath, classes)
	}
}

// latencyTally accumulates detection latencies overall and per class.
type latencyTally struct {
	sum, count int
	min, max   int
	n          []int
	classSum   []int
}

func newLatencyTally(nclasses int) *latencyTally {
	return &latencyTally{min: 1 << 30, n: make([]int, nclasses), classSum: make([]int, nclasses)}
}

func (l *latencyTally) add(class, rounds int) {
	l.sum += rounds
	l.count++
	if rounds < l.min {
		l.min = rounds
	}
	if rounds > l.max {
		l.max = rounds
	}
	l.n[class]++
	l.classSum[class] += rounds
}

func (l *latencyTally) mean() float64 { return float64(l.sum) / float64(l.count) }

func (l *latencyTally) classMean(c int) float64 { return float64(l.classSum[c]) / float64(l.n[c]) }

// obsRate renders a throughput in observations per second.
func obsRate(obs int, elapsed time.Duration) string {
	rate := float64(obs) / elapsed.Seconds()
	switch {
	case rate >= 1e6:
		return fmt.Sprintf("%.1fM obs/s", rate/1e6)
	case rate >= 1e3:
		return fmt.Sprintf("%.0fk obs/s", rate/1e3)
	}
	return fmt.Sprintf("%.0f obs/s", rate)
}

// verifyFleetJournal replays the recorded journal through fresh
// reference detectors — the external proof that the fleet fast path
// made exactly the decisions the paper's algorithms prescribe.
func verifyFleetJournal(path string, classes []fleet.ClassConfig) {
	byName := make(map[string]fleet.ClassConfig, len(classes))
	for _, c := range classes {
		byName[c.Name] = c
	}
	f, err := os.Open(path)
	fatalIf(err)
	defer f.Close()
	jr, err := journal.NewReader(bufio.NewReader(f))
	fatalIf(err)
	report, err := journal.ReplayFleet(jr, func(class string) (core.Detector, error) {
		c, ok := byName[class]
		if !ok {
			return nil, fmt.Errorf("unknown class %q", class)
		}
		return c.Detector()
	})
	fatalIf(err)
	if !report.Identical() {
		fatalIf(fmt.Errorf("fleet journal failed replay verification: %v", report.Mismatch))
	}
	fmt.Printf("identical (%d streams, %d decisions)\n", report.Streams, report.Decisions)
}
