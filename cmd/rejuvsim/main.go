// Command rejuvsim runs one configuration of the paper's e-commerce
// simulation model and prints the replication results: average response
// time, transaction loss, rejuvenation and GC counts.
//
// Example, the paper's best trade-off configuration at high load:
//
//	rejuvsim -algo SRAA -n 3 -k 2 -d 5 -load 9.0 -reps 5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rejuv/internal/core"
	"rejuv/internal/ecommerce"
	"rejuv/internal/experiment"
	"rejuv/internal/faults"
	"rejuv/internal/journal"
	"rejuv/internal/metrics"
	"rejuv/internal/stats"
)

// metricsRecord is one JSON line of the -metrics dump: the full registry
// snapshot at virtual time T seconds into replication Rep.
type metricsRecord struct {
	Rep     int                      `json:"rep"`
	T       float64                  `json:"t"`
	Metrics []metrics.SeriesSnapshot `json:"metrics"`
}

func main() {
	var (
		algo     = flag.String("algo", "SRAA", "algorithm: none, SRAA, SARAA, CLTA, Shewhart, EWMA, CUSUM")
		n        = flag.Int("n", 2, "sample size (n_orig for SARAA)")
		k        = flag.Int("k", 5, "number of buckets K")
		d        = flag.Int("d", 3, "bucket depth D")
		quantile = flag.Float64("quantile", 1.96, "CLTA normal quantile / Shewhart,EWMA limit / CUSUM threshold")
		weight   = flag.Float64("weight", 0.2, "EWMA smoothing weight / CUSUM slack")
		load     = flag.Float64("load", 8.0, "offered load in CPUs (lambda/mu)")
		txns     = flag.Int64("txns", 100_000, "transactions per replication")
		reps     = flag.Int("reps", 5, "replications")
		seed     = flag.Uint64("seed", 1, "base random seed")
		mean     = flag.Float64("mean", 5, "baseline mean response time (SLA)")
		sd       = flag.Float64("sd", 5, "baseline response time standard deviation (SLA)")
		burst    = flag.Float64("burst", 0, "burst factor (0 or 1 disables the on-off arrival overlay)")
		burstOn  = flag.Float64("burst-on", 60, "mean burst duration in seconds")
		burstOff = flag.Float64("burst-off", 600, "mean quiet duration in seconds")
		pause    = flag.Float64("pause", 0, "rejuvenation outage in seconds (paper: 0, instantaneous)")
		leaky    = flag.Bool("leaky-gc", false, "full GC reclaims nothing; only rejuvenation restores the heap")
		noGC     = flag.Bool("no-gc", false, "disable the memory/GC aging mechanism")
		noOvh    = flag.Bool("no-overhead", false, "disable the kernel-overhead mechanism")
		verbose  = flag.Bool("v", false, "print each replication")
		metricsP = flag.String("metrics", "", "write metrics snapshots to this file as JSON lines, one per sampling instant")
		metricsI = flag.Float64("metrics-interval", 500, "virtual-time seconds between -metrics snapshots")
		journalP = flag.String("journal", "", "record a flight-recorder journal of observations, decisions, rejuvenations and GCs to this file (inspect with rejuvtrace)")
		journalF = flag.String("journal-format", "binary", "journal codec: binary or jsonl")
		journalK = flag.Bool("journal-events", false, "also journal every DES kernel event (verbose: hundreds of records per transaction)")
		faultsP  = flag.String("faults", "", "fault-injection spec, e.g. 'nan:p=0.01;drop:p=0.05;slow-act:d=30' (see internal/faults)")
		hygieneP = flag.String("hygiene", "reject", "non-finite observation policy: reject, clamp or off")

		shiftP = flag.String("shift", "", "workload-shift demo: drive a non-stationary arrival profile (diurnal, flash or ramp) through a bare and a shift-aware detector and report rebaselines vs rejuvenations")
		shiftF = flag.Float64("shift-factor", 1.9, "workload-shift demo: peak arrival-rate factor")

		clusterN = flag.Int("cluster", 0, "cluster demo: run this many hosts under the always-full-restart policy and the cost-aware scheduler (partial rejuvenation, deadline deferral), journal + replay-verify the schedule, and compare loss; uses -load (per host), -txns, -seed, -pause (default 30 s here) and -leaky-gc")

		fleetN      = flag.Int("fleet", 0, "fleet mode: monitor this many synthetic streams through the batched fleet engine instead of simulating (see -fleet-* flags)")
		fleetRounds = flag.Int("fleet-rounds", 200, "fleet mode: observations per stream")
		fleetBatch  = flag.Int("fleet-batch", 4096, "fleet mode: observations per ObserveBatch call")
		fleetAging  = flag.Float64("fleet-aging", 0.01, "fleet mode: fraction of streams that degrade mid-run")
	)
	flag.Parse()

	var faultSpec faults.Spec
	if *faultsP != "" {
		var err error
		faultSpec, err = faults.ParseSpec(*faultsP)
		fatalIf(err)
	}
	hygiene, err := parseHygiene(*hygieneP)
	fatalIf(err)

	if *shiftP != "" {
		runShiftDemo(shiftOpts{
			shape: *shiftP, factor: *shiftF,
			load: *load, txns: *txns, seed: *seed,
			journalPath: *journalP,
		})
		return
	}

	if *clusterN > 0 {
		spec := experiment.Spec{
			Algorithm: experiment.Algorithm(*algo),
			N:         *n, K: *k, D: *d,
			Quantile: *quantile,
			Weight:   *weight,
		}
		spec.Baseline.Mean = *mean
		spec.Baseline.StdDev = *sd
		runClusterDemo(clusterOpts{
			hosts: *clusterN, spec: spec,
			load: *load, txns: *txns, seed: *seed,
			pause: *pause, leaky: *leaky,
			journalPath: *journalP,
		})
		return
	}

	if *fleetN > 0 {
		runFleet(fleetOpts{
			streams: *fleetN, rounds: *fleetRounds, batch: *fleetBatch,
			aging: *fleetAging, seed: *seed, hygiene: hygiene,
			journalPath: *journalP, journalFormat: *journalF,
		})
		return
	}

	// Actuator faults map onto the model's rejuvenation pause: a slow
	// action stretches every outage by its delay. Flaky/dead actions have
	// no DES equivalent (the simulated restart cannot fail), so they are
	// reported and otherwise ignored here; exercise them with the real
	// Actuator (see examples/httpserver).
	if af := faultSpec.ActionFaults(); af.Active() {
		if af.Delay > 0 {
			*pause += af.Delay
		}
		if af.Fails > 0 || af.Dead {
			fmt.Fprintln(os.Stderr, "rejuvsim: note: flaky-act/dead-act have no effect in the simulation; use the Actuator API")
		}
	}

	var dump *json.Encoder
	var dumpFile *os.File
	if *metricsP != "" {
		f, err := os.Create(*metricsP)
		fatalIf(err)
		dumpFile = f
		dump = json.NewEncoder(f)
	}

	spec := experiment.Spec{
		Algorithm: experiment.Algorithm(*algo),
		N:         *n, K: *k, D: *d,
		Quantile: *quantile,
		Weight:   *weight,
	}
	spec.Baseline.Mean = *mean
	spec.Baseline.StdDev = *sd

	lambda := *load * 0.2
	fmt.Printf("%s  load=%.2f CPUs (lambda=%.3f/s, mu=0.2/s, c=16)  %d x %d transactions\n",
		spec.Label(), *load, lambda, *reps, *txns)

	// The journal header stores the full detector spec so rejuvtrace
	// -verify can rebuild the detector and replay the decision stream.
	var jw *journal.Writer
	var journalBuf *bufio.Writer
	var journalFile *os.File
	if *journalP != "" {
		specJSON, err := json.Marshal(spec)
		fatalIf(err)
		meta := journal.Meta{
			CreatedBy: "rejuvsim",
			Detector:  spec.Label(),
			Spec:      string(specJSON),
			Seed:      *seed,
			Notes:     fmt.Sprintf("load=%.4g txns=%d reps=%d", *load, *txns, *reps),
		}
		f, err := os.Create(*journalP)
		fatalIf(err)
		journalFile = f
		journalBuf = bufio.NewWriter(f)
		switch *journalF {
		case "binary":
			jw = journal.NewWriter(journalBuf, meta)
		case "jsonl":
			jw = journal.NewJSONWriter(journalBuf, meta)
		default:
			fatalIf(fmt.Errorf("unknown -journal-format %q (want binary or jsonl)", *journalF))
		}
	}

	var pooled stats.Welford
	var completed, lost, rejuv, gcs, injected, rejected int64
	faultTally := map[faults.Class]int{}
	var faultOrder []faults.Class
	start := time.Now()
	for rep := 0; rep < *reps; rep++ {
		det, err := spec.NewDetector()
		fatalIf(err)
		model, err := ecommerce.New(ecommerce.Config{
			ArrivalRate:       lambda,
			Transactions:      *txns,
			BurstFactor:       *burst,
			BurstOn:           *burstOn,
			BurstOff:          *burstOff,
			RejuvenationPause: *pause,
			LeakyGC:           *leaky,
			DisableGC:         *noGC,
			DisableOverhead:   *noOvh,
			Seed:              *seed,
			Stream:            uint64(rep) + 1,
			Hygiene:           hygiene,
		}, det)
		fatalIf(err)
		if !faultSpec.Empty() {
			model.InjectFaults(faultSpec)
		}
		if jw != nil {
			jw.RepStart(0, rep+1, *seed, uint64(rep)+1)
			model.Journal(jw)
			if *journalK {
				model.JournalKernel(jw)
			}
		}
		var reg *metrics.Registry
		if dump != nil {
			reg = metrics.NewRegistry()
			model.Instrument(reg)
			repNo := rep + 1
			fatalIf(model.Tick(*metricsI, func(at float64) {
				fatalIf(dump.Encode(metricsRecord{Rep: repNo, T: at, Metrics: reg.Snapshot()}))
			}))
		}
		res, err := model.Run()
		fatalIf(err)
		if dump != nil {
			// Final snapshot so the end-of-replication state is always
			// present even when the run ends between grid points.
			fatalIf(dump.Encode(metricsRecord{Rep: rep + 1, T: res.SimTime, Metrics: reg.Snapshot()}))
		}
		if *verbose {
			fmt.Printf("  rep %d: avg RT %.3f s, loss %.6f, %d rejuvenations, %d GCs, %.0f s simulated\n",
				rep+1, res.AvgRT(), res.LossFraction(), res.Rejuvenations, res.GCs, res.SimTime)
		}
		pooled.Merge(res.RT)
		completed += res.Completed
		lost += res.Lost
		rejuv += res.Rejuvenations
		gcs += res.GCs
		injected += res.Injected
		rejected += res.Rejected
		for _, c := range model.FaultCounts() {
			if _, seen := faultTally[c.Class]; !seen {
				faultOrder = append(faultOrder, c.Class)
			}
			faultTally[c.Class] += c.N
		}
	}
	elapsed := time.Since(start)

	lossFrac := 0.0
	if done := completed + lost; done > 0 {
		lossFrac = float64(lost) / float64(done)
	}
	fmt.Printf("\naverage response time: %.3f s (sd %.3f)\n", pooled.Mean(), pooled.StdDev())
	fmt.Printf("transaction loss:      %.6f (%d of %d)\n", lossFrac, lost, completed+lost)
	fmt.Printf("rejuvenations:         %d   full GCs: %d\n", rejuv, gcs)
	if !faultSpec.Empty() {
		fmt.Printf("faults injected:       %d (%d rejected by %s hygiene)\n", injected, rejected, hygiene)
		for _, class := range faultOrder {
			fmt.Printf("  %-8s %d\n", class, faultTally[class])
		}
	}
	fmt.Printf("wall time:             %v\n", elapsed.Round(time.Millisecond))
	if dumpFile != nil {
		fatalIf(dumpFile.Close())
		fmt.Printf("metrics:               %s (every %.0f s of virtual time)\n", *metricsP, *metricsI)
	}
	if jw != nil {
		fatalIf(jw.Err())
		fatalIf(journalBuf.Flush())
		fatalIf(journalFile.Close())
		fmt.Printf("journal:               %s (%d records, %s)\n", *journalP, jw.Seq(), *journalF)
	}
}

// parseHygiene maps the -hygiene flag onto the core policy.
func parseHygiene(s string) (core.Hygiene, error) {
	switch s {
	case "reject":
		return core.HygieneReject, nil
	case "clamp":
		return core.HygieneClamp, nil
	case "off":
		return core.HygieneOff, nil
	}
	return 0, fmt.Errorf("unknown -hygiene %q (want reject, clamp or off)", s)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rejuvsim:", err)
		os.Exit(1)
	}
}
