package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"rejuv/internal/core"
	"rejuv/internal/ecommerce"
	"rejuv/internal/experiment"
	"rejuv/internal/journal"
)

// Workload-shift demo mode (-shift): the arrival rate moves because the
// workload legitimately changed — a diurnal cycle, a flash crowd, a
// ramp to a new plateau — while the aging mechanisms stay off. The same
// congested-but-healthy run is driven through a bare detector, which
// condemns the congestion and rejuvenates, and through the shift-aware
// wrapper (core.Rebase), which reclassifies it as workload and commits
// a new baseline. The shift-aware run is journaled and verified by
// replay; with -journal the journal is kept for rejuvtrace.

// shiftOpts carries the -shift flags.
type shiftOpts struct {
	shape       string
	factor      float64
	load        float64
	txns        int64
	seed        uint64
	journalPath string
}

// shiftShape builds the workload profile for a -shift name. The
// durations are fixed so the demo narrative is reproducible; the peak
// factor comes from -shift-factor.
func shiftShape(name string, factor float64) (*ecommerce.WorkloadShape, string, error) {
	switch name {
	case "diurnal":
		return ecommerce.DiurnalWorkload(2000, factor, 20),
			fmt.Sprintf("diurnal cycle (period 2000 s, peak factor %.4g)", factor), nil
	case "flash":
		return ecommerce.FlashCrowdWorkload(500, 2000, factor),
			fmt.Sprintf("flash crowd (t=500 s for 2000 s, factor %.4g)", factor), nil
	case "ramp":
		return ecommerce.RampPlateauWorkload(500, 1500, 10, factor),
			fmt.Sprintf("ramp to plateau (t=500 s over 1500 s, factor %.4g)", factor), nil
	}
	return nil, "", fmt.Errorf("unknown -shift shape %q (want diurnal, flash or ramp)", name)
}

// runShiftDemo executes the demo and prints the bare-versus-rebased
// comparison plus the rebaseline timeline.
func runShiftDemo(opts shiftOpts) {
	shape, desc, err := shiftShape(opts.shape, opts.factor)
	fatalIf(err)

	lambda := opts.load * 0.2
	// The scenario detector: a CLTA sensitive enough to notice sustained
	// congestion, judged against the paper's SLA baseline. The shift
	// layer is retuned from the telemetry defaults for queueing data:
	// response times are exponential-tailed (not Gaussian), so the
	// change-point needs more slack to not false-fire on the healthy
	// tail, a wider run boundary because congestion builds over many
	// transactions rather than stepping abruptly, and a longer relearn
	// so the heavy-tailed spread is estimated decently.
	spec := experiment.Spec{
		Algorithm: experiment.CLTA, N: 25, Quantile: 1.96,
		Baseline: experiment.PaperBaseline,
		Shift:    &core.ShiftConfig{Slack: 0.75, Threshold: 8, MaxShiftRun: 80, Relearn: 64},
	}
	fmt.Printf("workload-shift demo: %s  lambda=%.3g/s (load %.4g CPUs), %d transactions, seed %d\n",
		desc, lambda, opts.load, opts.txns, opts.seed)
	fmt.Printf("detector: %s  baseline mean=%.4g sd=%.4g  (aging mechanisms off: the system is healthy)\n\n",
		spec.Label(), spec.Baseline.Mean, spec.Baseline.StdDev)

	run := func(s experiment.Spec, jw *journal.Writer) ecommerce.Result {
		det, err := s.NewDetector()
		fatalIf(err)
		m, err := ecommerce.New(ecommerce.Config{
			ArrivalRate:     lambda,
			Transactions:    opts.txns,
			DisableGC:       true,
			DisableOverhead: true,
			Workload:        shape,
			Seed:            opts.seed,
			Stream:          1,
		}, det)
		fatalIf(err)
		if jw != nil {
			jw.RepStart(0, 1, opts.seed, 1)
			m.Journal(jw)
		}
		res, err := m.Run()
		fatalIf(err)
		return res
	}

	bare := run(bareSpec(spec), nil)

	specJSON, err := json.Marshal(spec)
	fatalIf(err)
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{
		CreatedBy: "rejuvsim",
		Detector:  spec.Label(),
		Spec:      string(specJSON),
		Seed:      opts.seed,
		Notes:     fmt.Sprintf("shift=%s factor=%.4g load=%.4g txns=%d", opts.shape, opts.factor, opts.load, opts.txns),
	})
	reb := run(spec, jw)
	fatalIf(jw.Err())

	fmt.Printf("bare %-28s %3d rejuvenations, %5d transactions lost\n",
		bareSpec(spec).Label()+":", bare.Rejuvenations, bare.Lost)
	fmt.Printf("shift-aware %-21s %3d rejuvenations, %5d transactions lost, %d rebaselines\n\n",
		spec.Label()+":", reb.Rejuvenations, reb.Lost, reb.Rebaselines)

	printRebaselineTimeline(&buf)

	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	fatalIf(err)
	rep, err := journal.Replay(jr, spec.NewDetector)
	fatalIf(err)
	if !rep.Identical() {
		fatalIf(fmt.Errorf("shift-aware journal diverged under replay: %v", rep.Mismatch))
	}
	fmt.Printf("replay: %d observations, %d decisions, %d rebaselines verified byte-identical\n",
		rep.Observations, rep.Decisions, rep.Rebaselines)

	if opts.journalPath != "" {
		fatalIf(os.WriteFile(opts.journalPath, buf.Bytes(), 0o644))
		fmt.Printf("journal: %s (%d records, binary)\n", opts.journalPath, jw.Seq())
	}
}

// bareSpec strips the shift layer for the comparison run.
func bareSpec(s experiment.Spec) experiment.Spec {
	s.Shift = nil
	return s
}

// printRebaselineTimeline lists every committed rebaseline of the
// journaled shift-aware run.
func printRebaselineTimeline(buf *bytes.Buffer) {
	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	fatalIf(err)
	records, err := jr.ReadAll()
	fatalIf(err)
	n := 0
	for _, r := range records {
		if r.Kind != journal.KindRebaseline {
			continue
		}
		n++
		fmt.Printf("  rebaseline #%d  t=%10.4g s  baseline -> mean=%.4g sd=%.4g\n",
			n, r.Time, r.BaseMean, r.BaseStdDev)
	}
	if n == 0 {
		fmt.Println("  (no rebaselines committed)")
	}
	fmt.Println()
}
