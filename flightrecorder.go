package rejuv

import (
	"io"

	"rejuv/internal/journal"
)

// This file is the flight-recorder surface of the package: re-exports
// of the internal/journal codec plus the replay verifier, so
// applications can journal a production Monitor and later replay the
// observation stream through a fresh detector to verify (or debug) the
// decisions it made. See doc.go, "Observability".

// JournalMeta is the self-describing header written at the start of
// every journal: who recorded it, which detector configuration, which
// seed.
type JournalMeta = journal.Meta

// JournalRecord is one decoded journal record. Which fields are
// meaningful depends on the record kind.
type JournalRecord = journal.Record

// JournalKind identifies the type of a journal record.
type JournalKind = journal.Kind

// JournalFormat selects the journal encoding.
type JournalFormat = journal.Format

// Journal record kinds, for interpreting decoded JournalRecords.
const (
	JournalKindRepStart     = journal.KindRepStart
	JournalKindObserve      = journal.KindObserve
	JournalKindDecision     = journal.KindDecision
	JournalKindReset        = journal.KindReset
	JournalKindRejuvenation = journal.KindRejuvenation
	JournalKindGCStart      = journal.KindGCStart
	JournalKindGCEnd        = journal.KindGCEnd
	JournalKindSimScheduled = journal.KindSimScheduled
	JournalKindSimFired     = journal.KindSimFired
	JournalKindSimCancelled = journal.KindSimCancelled
	JournalKindFault        = journal.KindFault
	JournalKindActStart     = journal.KindActStart
	JournalKindActAttempt   = journal.KindActAttempt
	JournalKindActGiveUp    = journal.KindActGiveUp
)

// Scheduling record kinds, written by a Scheduler (or a journaled
// cluster simulation) and replayed with ReplaySchedJournal.
const (
	JournalKindSchedEnqueue    = journal.KindSchedEnqueue
	JournalKindSchedDefer      = journal.KindSchedDefer
	JournalKindSchedCoalesce   = journal.KindSchedCoalesce
	JournalKindSchedStart      = journal.KindSchedStart
	JournalKindSchedComplete   = journal.KindSchedComplete
	JournalKindSchedQuarantine = journal.KindSchedQuarantine
	JournalKindSchedReadmit    = journal.KindSchedReadmit
)

// Journal encodings: the compact length-prefixed binary codec and the
// JSON-lines debug codec (one object per line, jq-friendly).
const (
	JournalBinary = journal.FormatBinary
	JournalJSONL  = journal.FormatJSONL
)

// JournalWriter appends records to a journal. Attach one via
// MonitorConfig.Journal and the monitor records every observation and
// every evaluated detector decision with timestamps relative to the
// first observation. The binary encode path does not allocate.
type JournalWriter = journal.Writer

// NewJournalWriter returns a writer emitting the binary codec to w,
// writing the header immediately. Wrap w in a bufio.Writer when it is
// a file; the journal issues two small writes per record.
func NewJournalWriter(w io.Writer, meta JournalMeta) *JournalWriter {
	return journal.NewWriter(w, meta)
}

// NewJournalJSONWriter returns a writer emitting the JSON-lines debug
// codec to w.
func NewJournalJSONWriter(w io.Writer, meta JournalMeta) *JournalWriter {
	return journal.NewJSONWriter(w, meta)
}

// JournalReader decodes a journal, auto-detecting the codec.
type JournalReader = journal.Reader

// NewJournalReader returns a reader for r, consuming the header.
func NewJournalReader(r io.Reader) (*JournalReader, error) {
	return journal.NewReader(r)
}

// ReplayReport summarizes one replay verification pass; see
// ReplayJournal.
type ReplayReport = journal.ReplayReport

// ReplayMismatch pinpoints the first divergence between recorded and
// replayed decision streams; nil on a ReplayReport means the streams
// were byte-identical.
type ReplayMismatch = journal.Mismatch

// ReplayJournal feeds the journaled observation stream through a
// detector built by factory and verifies that the resulting decisions
// are byte-identical to the recorded ones — the package's determinism
// guarantee, checkable after the fact. factory must construct the same
// detector configuration that recorded the journal.
func ReplayJournal(jr *JournalReader, factory func() (Detector, error)) (ReplayReport, error) {
	return journal.Replay(jr, factory)
}
