package rejuv_test

// This file regenerates every data figure of the paper's evaluation as a
// Go benchmark, one benchmark per figure, plus ablation and
// micro-benchmarks. Each figure benchmark runs a reduced-fidelity sweep
// per iteration (a subset of the load axis, fewer transactions) and
// reports the headline numbers the paper quotes as custom metrics, e.g.
// the average response time at 9.0 CPUs offered load. The cmd/figures
// tool produces the full-fidelity figures (5 x 100,000 transactions over
// the whole axis); the benchmarks exist so `go test -bench` exercises
// and times every experiment end to end.
//
// Metric naming: RT@<load>CPUs is seconds of average response time,
// loss@<load>CPUs is the fraction of transactions killed by
// rejuvenation.

import (
	"fmt"
	"testing"

	"rejuv"
	"rejuv/internal/experiment"
	"rejuv/internal/mmc"
	"rejuv/internal/stats"
)

// benchSweep is the reduced-fidelity sweep: the low-load point the paper
// uses for loss comparisons (0.5 CPUs) and the high-load point it quotes
// response times at (9.0 CPUs).
func benchSweep() experiment.SweepConfig {
	return experiment.SweepConfig{
		Loads:        []float64{0.5, 9.0},
		Replications: 2,
		Transactions: 25_000,
		Seed:         1,
	}
}

// runFigureBench executes one paper figure per iteration and reports
// each series' metric at the quoted load.
func runFigureBench(b *testing.B, figID string, quoteLoad float64) {
	fig, err := experiment.FigureByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchSweep()
	var last experiment.FigureResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = experiment.RunFigure(cfg, fig)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	unit := "RT"
	if fig.Metric == experiment.MetricLoss {
		unit = "loss"
	}
	for label, v := range last.SummaryAt(quoteLoad) {
		b.ReportMetric(v, fmt.Sprintf("%s@%gCPUs:%s", unit, quoteLoad, sanitize(label)))
	}
}

// sanitize strips spaces from series labels so metric names stay one token.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ':
			// dropped
		case ',':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig05AvgRTDensity regenerates Fig. 5: the exact density of
// the sample-average response time X̄n via the Fig. 4 CTMC (eq. 4),
// for the paper's four sample sizes, and reports the Section 4.1 tail
// masses beyond the 97.5% normal quantile.
func BenchmarkFig05AvgRTDensity(b *testing.B) {
	sys, err := mmc.New(16, 1.6, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = 0.2 + float64(i)*0.2 // 0.2 .. 12
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 5, 15, 30} {
			if _, err := sys.AvgRTPDF(n, xs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	for _, n := range []int{15, 30} {
		tail, err := sys.TailBeyondNormalQuantile(n, 0.975)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail*100, fmt.Sprintf("tailPct:n=%d", n))
	}
}

// BenchmarkAutocorrelation reproduces the Section 4.1 autocorrelation
// study: lag-1 autocorrelation of the pure M/M/16 response-time series
// with the transient dropped.
func BenchmarkAutocorrelation(b *testing.B) {
	var gamma float64
	for i := 0; i < b.N; i++ {
		series := make([]float64, 0, 50_000)
		m, err := rejuv.NewSimulation(rejuv.SimulationConfig{
			ArrivalRate:     1.6,
			Transactions:    50_000,
			DisableOverhead: true,
			DisableGC:       true,
			Seed:            1,
			Stream:          uint64(i) + 1,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		m.OnComplete = func(rt float64) { series = append(series, rt) }
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		gamma, err = stats.Autocorrelation(series[5_000:], 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gamma, "lag1autocorr")
}

// BenchmarkFig09SRAAResponseTime: RT vs load, SRAA, n*K*D = 15.
func BenchmarkFig09SRAAResponseTime(b *testing.B) { runFigureBench(b, "fig09", 9) }

// BenchmarkFig10SRAALoss: loss vs load, SRAA, n*K*D = 15, quoted at low load.
func BenchmarkFig10SRAALoss(b *testing.B) { runFigureBench(b, "fig10", 0.5) }

// BenchmarkFig11SRAASampleSizeDoubled: RT, SRAA, n*K*D = 30 via doubled n.
func BenchmarkFig11SRAASampleSizeDoubled(b *testing.B) { runFigureBench(b, "fig11", 9) }

// BenchmarkFig12SRAADepthDoubled: RT, SRAA, n*K*D = 30 via doubled D.
func BenchmarkFig12SRAADepthDoubled(b *testing.B) { runFigureBench(b, "fig12", 9) }

// BenchmarkFig13SRAADepthDoubledLoss: loss for the Fig. 12 configs.
func BenchmarkFig13SRAADepthDoubledLoss(b *testing.B) { runFigureBench(b, "fig13", 0.5) }

// BenchmarkFig14SRAABucketsDoubled: RT, SRAA, n*K*D = 30 via doubled K.
func BenchmarkFig14SRAABucketsDoubled(b *testing.B) { runFigureBench(b, "fig14", 9) }

// BenchmarkFig15SARAAResponseTime: RT, SARAA, n*K*D = 30.
func BenchmarkFig15SARAAResponseTime(b *testing.B) { runFigureBench(b, "fig15", 9) }

// BenchmarkFig16AlgorithmComparison: CLTA(30,1,1) vs SRAA(2,5,3) vs
// SARAA(2,5,3), the paper's headline comparison.
func BenchmarkFig16AlgorithmComparison(b *testing.B) { runFigureBench(b, "fig16", 9) }

// BenchmarkAblationNoRejuvenation quantifies what the paper's figures
// leave implicit: the system without any rejuvenation, where the
// GC-overhead death spiral makes the response time diverge at high load.
func BenchmarkAblationNoRejuvenation(b *testing.B) {
	var rt float64
	for i := 0; i < b.N; i++ {
		res, err := rejuv.Simulate(rejuv.SimulationConfig{
			ArrivalRate:  1.8,
			Transactions: 25_000,
			Seed:         1,
			Stream:       1,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		rt = res.AvgRT()
	}
	b.ReportMetric(rt, "RT@9CPUs:none")
}

// BenchmarkAblationRejuvenationPause studies the paper's instantaneous-
// rejuvenation assumption by charging each rejuvenation a restart
// outage, which penalizes trigger-happy configurations.
func BenchmarkAblationRejuvenationPause(b *testing.B) {
	for _, pause := range []float64{0, 30, 120} {
		pause := pause
		b.Run(fmt.Sprintf("pause=%gs", pause), func(b *testing.B) {
			var rt, loss float64
			for i := 0; i < b.N; i++ {
				det, err := rejuv.NewSRAA(rejuv.SRAAConfig{
					SampleSize: 2, Buckets: 5, Depth: 3,
					Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := rejuv.Simulate(rejuv.SimulationConfig{
					ArrivalRate:       1.8,
					Transactions:      25_000,
					RejuvenationPause: pause,
					Seed:              1,
					Stream:            1,
				}, det)
				if err != nil {
					b.Fatal(err)
				}
				rt, loss = res.AvgRT(), res.LossFraction()
			}
			b.ReportMetric(rt, "RT@9CPUs")
			b.ReportMetric(loss, "loss@9CPUs")
		})
	}
}

// BenchmarkAblationClassicalCharts positions the paper's algorithms
// against classical change detection on the same workload.
func BenchmarkAblationClassicalCharts(b *testing.B) {
	specs := []experiment.Spec{
		{Algorithm: experiment.SRAA, N: 2, K: 5, D: 3},
		{Algorithm: experiment.Shewhart, Quantile: 4},
		{Algorithm: experiment.EWMA, Weight: 0.2, Quantile: 4},
		{Algorithm: experiment.CUSUM, Weight: 0.5, Quantile: 8},
	}
	for _, spec := range specs {
		spec := spec
		b.Run(sanitize(spec.Label()), func(b *testing.B) {
			var rt, loss float64
			for i := 0; i < b.N; i++ {
				det, err := spec.NewDetector()
				if err != nil {
					b.Fatal(err)
				}
				res, err := rejuv.Simulate(rejuv.SimulationConfig{
					ArrivalRate:  1.8,
					Transactions: 25_000,
					Seed:         1,
					Stream:       1,
				}, det)
				if err != nil {
					b.Fatal(err)
				}
				rt, loss = res.AvgRT(), res.LossFraction()
			}
			b.ReportMetric(rt, "RT@9CPUs")
			b.ReportMetric(loss, "loss@9CPUs")
		})
	}
}

// BenchmarkAblationBurstTolerance tests the paper's central design
// claim: with no aging at all, transient arrival bursts must not cause
// rejuvenation under a multi-bucket configuration, while a single-bucket
// configuration false-triggers. Reported metrics are false alarms per
// 100k transactions.
func BenchmarkAblationBurstTolerance(b *testing.B) {
	configs := []struct {
		name    string
		n, k, d int
	}{
		{"multi=n2K5D3", 2, 5, 3},
		{"single=n15K1D1", 15, 1, 1},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var falseAlarms, loss float64
			for i := 0; i < b.N; i++ {
				det, err := rejuv.NewSRAA(rejuv.SRAAConfig{
					SampleSize: cfg.n, Buckets: cfg.k, Depth: cfg.d,
					Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := rejuv.Simulate(rejuv.SimulationConfig{
					ArrivalRate:  0.8,
					BurstFactor:  3.5,
					BurstOn:      60,
					BurstOff:     600,
					DisableGC:    true, // no aging: every trigger is false
					Transactions: 50_000,
					Seed:         1,
					Stream:       1,
				}, det)
				if err != nil {
					b.Fatal(err)
				}
				falseAlarms = float64(res.Rejuvenations) * 100_000 / float64(res.Completed+res.Lost)
				loss = res.LossFraction()
			}
			b.ReportMetric(falseAlarms, "falseAlarms/100k")
			b.ReportMetric(loss, "loss")
		})
	}
}

// BenchmarkAblationPeriodicBaseline compares the classical time-based
// rejuvenation policy (restart every T seconds, Huang et al.) against
// the paper's measurement-driven SRAA at the same load. The detector
// reacts to actual degradation; the clock fires regardless.
func BenchmarkAblationPeriodicBaseline(b *testing.B) {
	cases := []struct {
		name     string
		interval float64
		detector bool
	}{
		{"periodic=90s", 90, false},
		{"periodic=300s", 300, false},
		{"periodic=1200s", 1200, false},
		{"SRAA=n2K5D3", 0, true},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var rt, loss float64
			for i := 0; i < b.N; i++ {
				var det rejuv.Detector
				if c.detector {
					var err error
					det, err = rejuv.NewSRAA(rejuv.SRAAConfig{
						SampleSize: 2, Buckets: 5, Depth: 3,
						Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				res, err := rejuv.Simulate(rejuv.SimulationConfig{
					ArrivalRate:          1.8,
					Transactions:         25_000,
					RejuvenationInterval: c.interval,
					Seed:                 1,
					Stream:               1,
				}, det)
				if err != nil {
					b.Fatal(err)
				}
				rt, loss = res.AvgRT(), res.LossFraction()
			}
			b.ReportMetric(rt, "RT@9CPUs")
			b.ReportMetric(loss, "loss@9CPUs")
		})
	}
}

// BenchmarkAblationCluster compares single-host and 4-host deployments
// at the same per-host load, with a 30 s restart outage per host
// rejuvenation (the companion work's deployment).
func BenchmarkAblationCluster(b *testing.B) {
	var rt float64
	for i := 0; i < b.N; i++ {
		res, err := rejuv.SimulateCluster(rejuv.ClusterConfig{
			Hosts:             4,
			ArrivalRate:       4 * 1.8,
			RejuvenationPause: 30,
			Transactions:      50_000,
			Seed:              1,
		}, func(int) (rejuv.Detector, error) {
			return rejuv.NewSRAA(rejuv.SRAAConfig{
				SampleSize: 2, Buckets: 5, Depth: 3,
				Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
			})
		})
		if err != nil {
			b.Fatal(err)
		}
		rt = res.AvgRT()
	}
	b.ReportMetric(rt, "RT@9CPUsPerHost")
}

// BenchmarkSensitivityGCPause sweeps the paper's fixed 60 s GC stall,
// the model parameter the response-time figures are most sensitive to.
func BenchmarkSensitivityGCPause(b *testing.B) {
	for _, pause := range []float64{15, 60, 240} {
		pause := pause
		b.Run(fmt.Sprintf("gcPause=%gs", pause), func(b *testing.B) {
			var rt, loss float64
			for i := 0; i < b.N; i++ {
				det, err := rejuv.NewSRAA(rejuv.SRAAConfig{
					SampleSize: 2, Buckets: 5, Depth: 3,
					Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := rejuv.Simulate(rejuv.SimulationConfig{
					ArrivalRate:  1.8,
					GCPause:      pause,
					Transactions: 25_000,
					Seed:         1,
					Stream:       1,
				}, det)
				if err != nil {
					b.Fatal(err)
				}
				rt, loss = res.AvgRT(), res.LossFraction()
			}
			b.ReportMetric(rt, "RT@9CPUs")
			b.ReportMetric(loss, "loss@9CPUs")
		})
	}
}

// BenchmarkSensitivityHeap sweeps the heap size, which sets the aging
// period (transactions between GC stalls).
func BenchmarkSensitivityHeap(b *testing.B) {
	for _, heapMB := range []float64{1024, 3072, 8192} {
		heapMB := heapMB
		b.Run(fmt.Sprintf("heap=%gMB", heapMB), func(b *testing.B) {
			var rt, gcs float64
			for i := 0; i < b.N; i++ {
				det, err := rejuv.NewSRAA(rejuv.SRAAConfig{
					SampleSize: 2, Buckets: 5, Depth: 3,
					Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := rejuv.Simulate(rejuv.SimulationConfig{
					ArrivalRate:  1.8,
					HeapMB:       heapMB,
					Transactions: 25_000,
					Seed:         1,
					Stream:       1,
				}, det)
				if err != nil {
					b.Fatal(err)
				}
				rt, gcs = res.AvgRT(), float64(res.GCs)
			}
			b.ReportMetric(rt, "RT@9CPUs")
			b.ReportMetric(gcs, "GCs")
		})
	}
}

// BenchmarkSensitivityServiceDistribution tests robustness of the
// detection results to the paper's exponential-service assumption by
// swapping in a less variable (Erlang-2) and a more variable
// (hyperexponential, CV 2) processing-time distribution with the same
// mean.
func BenchmarkSensitivityServiceDistribution(b *testing.B) {
	for _, d := range []string{"exponential", "erlang2", "hyper2"} {
		d := d
		b.Run(d, func(b *testing.B) {
			var rt, loss float64
			for i := 0; i < b.N; i++ {
				det, err := rejuv.NewSRAA(rejuv.SRAAConfig{
					SampleSize: 2, Buckets: 5, Depth: 3,
					Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := rejuv.Simulate(rejuv.SimulationConfig{
					ArrivalRate:         1.8,
					ServiceDistribution: rejuv.ServiceDistribution(d),
					Transactions:        25_000,
					Seed:                1,
					Stream:              1,
				}, det)
				if err != nil {
					b.Fatal(err)
				}
				rt, loss = res.AvgRT(), res.LossFraction()
			}
			b.ReportMetric(rt, "RT@9CPUs")
			b.ReportMetric(loss, "loss@9CPUs")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed in
// transactions per second of wall time, the figure that bounds how fast
// the full evaluation can regenerate.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rejuv.Simulate(rejuv.SimulationConfig{
			ArrivalRate:  1.6,
			Transactions: 10_000,
			Seed:         1,
			Stream:       uint64(i) + 1,
		}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*10_000/b.Elapsed().Seconds(), "txns/s")
}

// BenchmarkDetectorObserve measures the per-observation cost of each
// detector — the overhead a production monitor adds to a request path.
func BenchmarkDetectorObserve(b *testing.B) {
	base := rejuv.Baseline{Mean: 5, StdDev: 5}
	builders := map[string]func() (rejuv.Detector, error){
		"SRAA": func() (rejuv.Detector, error) {
			return rejuv.NewSRAA(rejuv.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: base})
		},
		"SARAA": func() (rejuv.Detector, error) {
			return rejuv.NewSARAA(rejuv.SARAAConfig{InitialSampleSize: 2, Buckets: 5, Depth: 3, Baseline: base})
		},
		"CLTA": func() (rejuv.Detector, error) {
			return rejuv.NewCLTA(rejuv.CLTAConfig{SampleSize: 30, Quantile: 1.96, Baseline: base})
		},
		"EWMA": func() (rejuv.Detector, error) { return rejuv.NewEWMA(0.2, 3, base) },
		"CUSUM": func() (rejuv.Detector, error) {
			return rejuv.NewCUSUM(0.5, 5, base)
		},
	}
	for name, build := range builders {
		build := build
		b.Run(name, func(b *testing.B) {
			det, err := build()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.Observe(float64(i%13) + 1)
			}
		})
	}
}

// BenchmarkMonitorObserve measures the concurrent monitor wrapper.
func BenchmarkMonitorObserve(b *testing.B) {
	det, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 2, Buckets: 5, Depth: 3,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  det,
		OnTrigger: func(rejuv.Trigger) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Observe(float64(i%13) + 1)
			i++
		}
	})
}
