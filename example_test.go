package rejuv_test

import (
	"fmt"
	"strings"
	"time"

	"rejuv"
)

// A detector is a deterministic state machine: feed observations, get a
// decision. Here a massive sustained degradation walks SRAA through its
// buckets until it calls for rejuvenation.
func ExampleNewSRAA() {
	detector, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 2,
		Buckets:    2,
		Depth:      1,
		Baseline:   rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		panic(err)
	}
	for i := 1; ; i++ {
		if detector.Observe(100).Triggered {
			fmt.Printf("rejuvenation after %d observations\n", i)
			break
		}
	}
	// Output:
	// rejuvenation after 8 observations
}

// SARAA shrinks its sample size as degradation deepens, so later
// buckets confirm faster: the same trigger needs fewer observations
// than SRAA with identical (n, K, D).
func ExampleNewSARAA() {
	count := func(d rejuv.Detector) int {
		for i := 1; ; i++ {
			if d.Observe(100).Triggered {
				return i
			}
		}
	}
	base := rejuv.Baseline{Mean: 5, StdDev: 5}
	sraa, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 6, Buckets: 2, Depth: 1, Baseline: base,
	})
	if err != nil {
		panic(err)
	}
	saraa, err := rejuv.NewSARAA(rejuv.SARAAConfig{
		InitialSampleSize: 6, Buckets: 2, Depth: 1, Baseline: base,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("SRAA: %d observations, SARAA: %d observations\n", count(sraa), count(saraa))
	// Output:
	// SRAA: 24 observations, SARAA: 18 observations
}

// CLTA triggers on the first sample mean above the normal-quantile
// target mean + z*sd/sqrt(n).
func ExampleNewCLTA() {
	detector, err := rejuv.NewCLTA(rejuv.CLTAConfig{
		SampleSize: 4,
		Quantile:   1.96,
		Baseline:   rejuv.Baseline{Mean: 5, StdDev: 2},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("target: %.2f\n", detector.Target())
	for _, x := range []float64{9, 9, 9, 9} { // one sample of four
		if d := detector.Observe(x); d.Triggered {
			fmt.Printf("triggered on sample mean %.1f\n", d.SampleMean)
		}
	}
	// Output:
	// target: 6.96
	// triggered on sample mean 9.0
}

// Monitor adapts a detector for concurrent use and rate-limits triggers
// with a cooldown.
func ExampleNewMonitor() {
	detector, err := rejuv.NewStaticDetector(1, 1, rejuv.Baseline{Mean: 0.1, StdDev: 0.05})
	if err != nil {
		panic(err)
	}
	monitor, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector: detector,
		Cooldown: time.Hour,
		OnTrigger: func(t rejuv.Trigger) {
			fmt.Printf("rejuvenate! (observation %d)\n", t.Observations)
		},
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 10; i++ {
		monitor.Observe(0.5) // a very slow service, far above baseline
	}
	stats := monitor.Stats()
	fmt.Printf("triggers: %d, suppressed by cooldown: %d\n", stats.Triggers, stats.Suppressed)
	// Output:
	// rejuvenate! (observation 2)
	// triggers: 1, suppressed by cooldown: 4
}

// A Collector publishes monitor and detector state into a metrics
// Registry, which renders in Prometheus text exposition format: scrape
// it from /metrics via Registry.Handler.
func ExampleNewCollector() {
	detector, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 2, Buckets: 2, Depth: 1,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		panic(err)
	}
	registry := rejuv.NewRegistry()
	monitor, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  detector,
		OnTrigger: func(rejuv.Trigger) {},
		Collector: rejuv.NewCollector(registry, rejuv.Label{Name: "algo", Value: "SRAA"}),
		Now:       func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 6; i++ {
		monitor.Observe(100) // sustained degradation: 3 exceeding samples
	}
	var b strings.Builder
	if err := registry.WritePrometheus(&b); err != nil {
		panic(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "rejuv_detector_bucket_") ||
			strings.HasPrefix(line, "rejuv_observations_total{") {
			fmt.Println(line)
		}
	}
	// Output:
	// rejuv_detector_bucket_fill{algo="SRAA"} 1
	// rejuv_detector_bucket_level{algo="SRAA"} 1
	// rejuv_observations_total{algo="SRAA"} 6
}

// A TraceLog records every evaluated detector decision; after a trigger
// fires, TriggerContext explains it: the sample means that walked the
// buckets up to the threshold crossing.
func ExampleNewTraceLog() {
	detector, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 2, Buckets: 2, Depth: 1,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		panic(err)
	}
	trace := rejuv.NewTraceLog(64)
	monitor, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  detector,
		OnTrigger: func(rejuv.Trigger) {},
		Trace:     trace,
		Now:       func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 16 && monitor.Stats().Triggers == 0; i++ {
		monitor.Observe(100)
	}
	for _, e := range trace.TriggerContext(3) {
		suffix := ""
		if e.Triggered {
			suffix = "  TRIGGER"
		}
		fmt.Printf("obs=%d mean=%g target=%g level=%d fill=%d%s\n",
			e.Observation, e.SampleMean, e.Target, e.Level, e.Fill, suffix)
	}
	// Output:
	// obs=4 mean=100 target=5 level=1 fill=0
	// obs=6 mean=100 target=10 level=1 fill=1
	// obs=8 mean=100 target=10 level=0 fill=0  TRIGGER
}

// Simulate runs the paper's e-commerce system model; here at a low load
// where the multi-bucket configuration never rejuvenates.
func ExampleSimulate() {
	detector, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 2, Buckets: 5, Depth: 3,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		panic(err)
	}
	result, err := rejuv.Simulate(rejuv.SimulationConfig{
		ArrivalRate:  0.1, // 0.5 CPUs offered load
		Transactions: 10_000,
		Seed:         1,
	}, detector)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rejuvenations: %d, lost: %d\n", result.Rejuvenations, result.Lost)
	// Output:
	// rejuvenations: 0, lost: 0
}

// Adaptive learns the baseline during a warmup window, then builds the
// configured detector from the learned values — no SLA required.
func ExampleNewAdaptive() {
	adaptive, err := rejuv.NewAdaptive(100, func(b rejuv.Baseline) (rejuv.Detector, error) {
		fmt.Println("baseline learned")
		return rejuv.NewSRAA(rejuv.SRAAConfig{
			SampleSize: 2, Buckets: 2, Depth: 2, Baseline: b,
		})
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		adaptive.Observe(float64(i%10) + 1) // healthy traffic, mean 5.5
	}
	if _, ok := adaptive.Learned(); ok {
		fmt.Println("detector active")
	}
	// Output:
	// baseline learned
	// detector active
}
