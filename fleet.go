package rejuv

import (
	"io"
	"net/http"
	"time"

	"rejuv/internal/fleet"
	"rejuv/internal/health"
	"rejuv/internal/journal"
)

// The fleet engine scales the detection pipeline from one Monitor to
// very many streams at once: lock-striped shards of struct-of-arrays
// detector state, batched ingestion, one shared journal and one shared
// bounded-cardinality metrics registry. See the internal/fleet package
// documentation and DESIGN §14 for the architecture.

// Fleet is the multi-tenant monitoring engine. Where a Monitor watches
// one observation stream, a Fleet watches hundreds of thousands behind
// one batched call:
//
//	f, err := rejuv.NewFleet(rejuv.FleetConfig{
//		Classes: []rejuv.StreamClass{{
//			Name: "web", Family: rejuv.FamilySRAA,
//			SampleSize: 4, Buckets: 5, Depth: 3,
//			Baseline: rejuv.Baseline{Mean: 0.5, StdDev: 0.1},
//		}},
//		OnTrigger: func(tr rejuv.FleetTrigger) { rejuvenate(tr.Stream) },
//	})
//	f.OpenStream(1001, "web")
//	f.ObserveBatch([]rejuv.StreamObs{{Stream: 1001, Value: 0.47}, ...})
type Fleet = fleet.Engine

// FleetConfig configures a Fleet; see NewFleet.
type FleetConfig = fleet.Config

// StreamClass declares one named detector configuration shared by every
// stream opened under it.
type StreamClass = fleet.ClassConfig

// DetectorFamily selects which of the paper's algorithms a stream class
// runs.
type DetectorFamily = fleet.Family

// Detector families for StreamClass.Family.
const (
	// FamilySRAA is the static rejuvenation algorithm with averaging.
	FamilySRAA = fleet.FamilySRAA
	// FamilySARAA is the sampling-acceleration algorithm.
	FamilySARAA = fleet.FamilySARAA
	// FamilyCLTA is the central-limit-theorem algorithm.
	FamilyCLTA = fleet.FamilyCLTA
)

// StreamID identifies one monitored stream within a Fleet.
type StreamID = fleet.StreamID

// StreamObs is one observation addressed to one fleet stream — the unit
// of batched ingestion.
type StreamObs = fleet.StreamObs

// FleetTrigger is one rejuvenation trigger raised by a fleet stream.
type FleetTrigger = fleet.Trigger

// FleetStats is an aggregate snapshot of fleet counters.
type FleetStats = fleet.Stats

// FleetHealth is one consistent fleet health view, assembled by
// Fleet.HealthSnapshot: the top-K most-aged streams (Space-Saving
// sketch merged across shards), the fleet-wide bucket-level histogram
// with exemplars, per-class detection statistics, trigger-queue state
// and the process's own runtime telemetry. Serve it over HTTP with
// FleetzHandler, or render it with the rejuvtop CLI.
type FleetHealth = health.Snapshot

// StreamHealth is one ranked stream of the fleet's top-K aging view.
type StreamHealth = health.StreamHealth

// FleetzHandler returns the /fleetz endpoint for a fleet: the health
// snapshot as indented JSON, or the human text view with ?format=text.
// latency, when non-nil, attaches a quantile digest of an
// observed-metric histogram (for example the Collector's
// rejuv_observed_metric series) to each served snapshot.
func FleetzHandler(f *Fleet, latency *MetricHistogram) http.Handler {
	return health.NewHandler(health.HandlerConfig{
		Snapshot: f.HealthSnapshot,
		Latency:  latency,
	})
}

// Stream-tagged journal record kinds written by a Fleet's journal.
const (
	JournalKindStreamOpen     = journal.KindStreamOpen
	JournalKindStreamClose    = journal.KindStreamClose
	JournalKindStreamObserve  = journal.KindStreamObserve
	JournalKindStreamDecision = journal.KindStreamDecision
	// JournalKindStreamRebaseline marks a committed workload-shift
	// rebaseline on a stream of a shift-enabled class (StreamClass.Shift).
	JournalKindStreamRebaseline = journal.KindStreamRebaseline
)

// JournalKindRebaseline marks a committed workload-shift rebaseline on
// a single-detector (Monitor) journal; see NewRebaseDetector.
const JournalKindRebaseline = journal.KindRebaseline

// NewFleet validates the configuration and returns a running fleet
// engine. Config.Now defaults to time.Now; deterministic harnesses
// inject a fake clock instead. If OnTrigger is set a dispatcher
// goroutine delivers triggers with panic isolation; otherwise drain
// Fleet.Triggers yourself. Stop the engine with Close.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return fleet.New(cfg)
}

// FleetReplayReport summarizes one fleet journal replay; see
// ReplayFleetJournal.
type FleetReplayReport = journal.FleetReplayReport

// ReplayFleetJournal re-derives every stream's decisions in a fleet
// journal by feeding the journaled observations through fresh reference
// detectors — one per stream, built by the per-class factory — and
// compares them byte for byte against the journaled decisions. It is
// the external-auditor proof that the fleet's struct-of-arrays fast
// path implements exactly the published algorithms: use
// StreamClass.Detector as the factory to check a journal against the
// classes that produced it.
func ReplayFleetJournal(r io.Reader, factory func(class string) (Detector, error)) (FleetReplayReport, error) {
	jr, err := journal.NewReader(r)
	if err != nil {
		return FleetReplayReport{}, err
	}
	return journal.ReplayFleet(jr, factory)
}
