package rejuv_test

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rejuv"
)

// collectorValue digs one series value out of a registry snapshot.
func collectorValue(t *testing.T, reg *rejuv.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("series %s not registered", name)
	return 0
}

func TestCollectorPublishesMonitorState(t *testing.T) {
	det, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 2, Buckets: 2, Depth: 1,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := rejuv.NewRegistry()
	now := time.Unix(1000, 0)
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  det,
		OnTrigger: func(rejuv.Trigger) {},
		Collector: rejuv.NewCollector(reg),
		Cooldown:  time.Minute,
		Now:       func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}

	m.Observe(100) // half a sample: no evaluation yet
	if got := collectorValue(t, reg, "rejuv_observations_total"); got != 1 {
		t.Errorf("observations = %v, want 1", got)
	}
	if got := collectorValue(t, reg, "rejuv_samples_evaluated_total"); got != 0 {
		t.Errorf("evaluations = %v, want 0", got)
	}
	if got := collectorValue(t, reg, "rejuv_detector_sample_fill"); got != 1 {
		t.Errorf("sample fill = %v, want 1", got)
	}

	m.Observe(100) // completes a sample; mean 100 > target 5 fills the bucket
	if got := collectorValue(t, reg, "rejuv_samples_evaluated_total"); got != 1 {
		t.Errorf("evaluations = %v, want 1", got)
	}
	if got := collectorValue(t, reg, "rejuv_detector_last_sample_mean"); got != 100 {
		t.Errorf("last sample mean = %v, want 100", got)
	}
	// mean 100 against target mu + 0*sigma = 5: distance 95.
	if got := collectorValue(t, reg, "rejuv_detector_mean_minus_target"); got != 95 {
		t.Errorf("mean minus target = %v, want 95", got)
	}

	// Walk the detector to a trigger: each pair of 100s is one exceeding
	// sample; (D+1) overflows per bucket, K buckets.
	for i := 0; i < 20 && collectorValue(t, reg, "rejuv_triggers_total") == 0; i++ {
		m.Observe(100)
	}
	if got := collectorValue(t, reg, "rejuv_triggers_total"); got != 1 {
		t.Fatalf("triggers = %v, want 1", got)
	}
	if got := collectorValue(t, reg, "rejuv_cooldown_active"); got != 1 {
		t.Errorf("cooldown gauge = %v, want 1 right after a trigger", got)
	}
	// After the trigger the detector has reset.
	if got := collectorValue(t, reg, "rejuv_detector_bucket_level"); got != 0 {
		t.Errorf("bucket level = %v, want 0 after reset", got)
	}

	// A second trigger inside the cooldown is suppressed.
	for i := 0; i < 20 && collectorValue(t, reg, "rejuv_triggers_suppressed_total") == 0; i++ {
		m.Observe(100)
	}
	if got := collectorValue(t, reg, "rejuv_triggers_suppressed_total"); got != 1 {
		t.Errorf("suppressed = %v, want 1", got)
	}

	// The histogram saw every observation.
	var found bool
	for _, s := range reg.Snapshot() {
		if s.Name == "rejuv_observed_metric" {
			found = true
			if s.Count != uint64(m.Stats().Observations) {
				t.Errorf("histogram count %d, want %d", s.Count, m.Stats().Observations)
			}
		}
	}
	if !found {
		t.Error("observed-metric histogram not registered")
	}
}

func TestTraceLogExplainsTrigger(t *testing.T) {
	det, err := rejuv.NewSARAA(rejuv.SARAAConfig{
		InitialSampleSize: 2, Buckets: 2, Depth: 1,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := rejuv.NewTraceLog(8)
	now := time.Unix(2000, 0)
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  det,
		OnTrigger: func(rejuv.Trigger) {},
		Trace:     trace,
		Now:       func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && m.Stats().Triggers == 0; i++ {
		m.Observe(100)
	}
	if m.Stats().Triggers == 0 {
		t.Fatal("detector never triggered")
	}

	ctx := trace.TriggerContext(3)
	if len(ctx) == 0 {
		t.Fatal("no trigger context recorded")
	}
	last := ctx[len(ctx)-1]
	if !last.Triggered {
		t.Fatalf("context does not end in a trigger: %+v", last)
	}
	if last.SampleMean != 100 {
		t.Errorf("trigger sample mean = %v, want 100", last.SampleMean)
	}
	if last.SampleMean <= last.Target {
		t.Errorf("trace records mean %v not exceeding target %v: cannot explain the trigger",
			last.SampleMean, last.Target)
	}
	if last.Value != 100 || last.Observation == 0 || !last.Time.Equal(now) {
		t.Errorf("entry inputs wrong: %+v", last)
	}

	// JSON-lines dump: a header line, then one parseable object per line.
	var b strings.Builder
	if err := trace.Dump(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != trace.Len()+1 {
		t.Fatalf("dump has %d lines, want %d entries plus a header", len(lines), trace.Len())
	}
	var hdr struct {
		Retained int    `json:"retained"`
		Total    uint64 `json:"total"`
		Dropped  uint64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("unparseable dump header %q: %v", lines[0], err)
	}
	if hdr.Retained != trace.Len() || hdr.Total != trace.Total() || hdr.Dropped != trace.Dropped() {
		t.Fatalf("dump header %+v, want retained=%d total=%d dropped=%d",
			hdr, trace.Len(), trace.Total(), trace.Dropped())
	}
	for _, line := range lines[1:] {
		var e rejuv.TraceEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
	}
}

func TestTraceLogRingOverwritesOldest(t *testing.T) {
	l := rejuv.NewTraceLog(3)
	for i := 1; i <= 5; i++ {
		l.Record(rejuv.TraceEntry{Observation: uint64(i)})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	got := l.Entries()
	for i, want := range []uint64{3, 4, 5} {
		if got[i].Observation != want {
			t.Fatalf("entries = %+v, want observations 3,4,5 oldest-first", got)
		}
	}
	if ctx := l.TriggerContext(2); ctx != nil {
		t.Fatalf("trigger context without triggers = %+v, want nil", ctx)
	}
}

// TestTraceLogDroppedCountsUnreadOverwrites pins the semantics of
// rejuv_tracelog_dropped_total: only overwrites of entries that no
// snapshot ever returned count as drops — a full ring whose content is
// being read is not losing evidence.
func TestTraceLogDroppedCountsUnreadOverwrites(t *testing.T) {
	reg := rejuv.NewRegistry()
	l := rejuv.NewTraceLog(3)
	l.Instrument(reg)

	for i := 1; i <= 3; i++ {
		l.Record(rejuv.TraceEntry{Observation: uint64(i)})
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped=%d before any overwrite", l.Dropped())
	}

	// Entry 1 was never snapshotted; overwriting it is a drop.
	l.Record(rejuv.TraceEntry{Observation: 4})
	if l.Dropped() != 1 {
		t.Fatalf("dropped=%d after unread overwrite, want 1", l.Dropped())
	}

	// A snapshot marks the retained entries (2,3,4) as read, so the
	// next three overwrites are not drops.
	_ = l.Entries()
	for i := 5; i <= 7; i++ {
		l.Record(rejuv.TraceEntry{Observation: uint64(i)})
	}
	if l.Dropped() != 1 {
		t.Fatalf("dropped=%d after overwriting read entries, want still 1", l.Dropped())
	}

	// Entry 5 (recorded after the snapshot) is unread; dropping it
	// counts again.
	l.Record(rejuv.TraceEntry{Observation: 8})
	if l.Dropped() != 2 {
		t.Fatalf("dropped=%d, want 2", l.Dropped())
	}

	if got := collectorValue(t, reg, "rejuv_tracelog_dropped_total"); got != 2 {
		t.Errorf("rejuv_tracelog_dropped_total=%v, want 2", got)
	}
}

// TestMonitorStatsRace drives Observe, Stats, and a trace/collector
// reader concurrently; under -race this pins the documented guarantee
// that Stats is a consistent locked snapshot (the LastTrigger field in
// particular is only read under the lock).
func TestMonitorStatsRace(t *testing.T) {
	det, err := rejuv.NewCLTA(rejuv.CLTAConfig{
		SampleSize: 5, Quantile: 1.96,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := rejuv.NewRegistry()
	trace := rejuv.NewTraceLog(16)
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  det,
		OnTrigger: func(rejuv.Trigger) {},
		Cooldown:  time.Microsecond,
		Collector: rejuv.NewCollector(reg),
		Trace:     trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Observe(100)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := m.Stats()
				if s.Triggers > 0 && s.LastTrigger.IsZero() {
					t.Error("triggers counted but LastTrigger still zero")
					return
				}
				_ = trace.Entries()
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	if s := m.Stats(); s.Observations != 8000 {
		t.Fatalf("observations = %d, want 8000", s.Observations)
	}
}
