package rejuv_test

// Allocation pins for the hot path the `rejuvlint` hotpath analyzer
// guards statically: Monitor.Observe → detector → decision, with and
// without the full instrumentation stack (collector, trace ring,
// binary journal). The static analysis proves no allocation site is
// reachable from the //lint:hotpath roots without an explicit allow;
// these tests prove at runtime that the allowed sites really are
// amortized or off-path. If either test regresses, a change put an
// allocation on the per-observation path the whole fleet pays for.

import (
	"io"
	"testing"

	"rejuv"
)

// hotPathDetector returns the paper's headline SRAA configuration. The
// observation streams below sit persistently above the baseline, so
// samples keep exceeding the target, buckets fill and triggers fire —
// exercising the trigger delivery and detector reset branches, not
// just the quiet path.
func hotPathDetector(t testing.TB) rejuv.Detector {
	t.Helper()
	det, err := rejuv.NewSRAA(rejuv.SRAAConfig{
		SampleSize: 2, Buckets: 5, Depth: 3,
		Baseline: rejuv.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestMonitorObserveDoesNotAllocate(t *testing.T) {
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  hotPathDetector(t),
		OnTrigger: func(rejuv.Trigger) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		// 30..42, always above the mean-5 baseline: every sample
		// exceeds, so buckets fill and a trigger fires roughly every
		// n*K*D samples.
		m.Observe(float64(i%13) + 30)
		i++
	})
	if allocs != 0 {
		t.Errorf("uninstrumented Monitor.Observe allocates %.1f objects per call, want 0", allocs)
	}
	if st := m.Stats(); st.Triggers == 0 {
		t.Fatalf("observation stream never triggered; the pin did not cover the delivery path (stats %+v)", st)
	}
}

func TestMonitorObserveInstrumentedDoesNotAllocate(t *testing.T) {
	reg := rejuv.NewRegistry()
	trace := rejuv.NewTraceLog(64)
	jw := rejuv.NewJournalWriter(io.Discard, rejuv.JournalMeta{Detector: "SRAA"})
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  hotPathDetector(t),
		OnTrigger: func(rejuv.Trigger) {},
		Collector: rejuv.NewCollector(reg),
		Trace:     trace,
		Journal:   jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the journal's scratch buffer and the trace ring: their first
	// records size internal buffers that are reused ever after.
	for i := 0; i < 200; i++ {
		m.Observe(float64(i%13) + 30)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		m.Observe(float64(i%13) + 30)
		i++
	})
	if allocs != 0 {
		t.Errorf("instrumented Monitor.Observe allocates %.1f objects per call, want 0", allocs)
	}
	if err := jw.Err(); err != nil {
		t.Fatalf("journal writer failed: %v", err)
	}
	if st := m.Stats(); st.Triggers == 0 {
		t.Fatalf("observation stream never triggered; the pin did not cover the delivery path (stats %+v)", st)
	}
}

// BenchmarkMonitorObserveInstrumented times the fully instrumented
// per-observation path (collector + trace ring + binary journal); its
// allocs/op column is the runtime counterpart of the hotpath lint rule.
func BenchmarkMonitorObserveInstrumented(b *testing.B) {
	reg := rejuv.NewRegistry()
	jw := rejuv.NewJournalWriter(io.Discard, rejuv.JournalMeta{Detector: "SRAA"})
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  hotPathDetector(b),
		OnTrigger: func(rejuv.Trigger) {},
		Collector: rejuv.NewCollector(reg),
		Trace:     rejuv.NewTraceLog(1024),
		Journal:   jw,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		m.Observe(float64(i%13) + 30)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(float64(i%13) + 30)
	}
}
