#!/usr/bin/env bash
# bench.sh runs the repository's benchmark suite and distills the
# output into a machine-readable JSON baseline: one entry per
# benchmark, mapping to its ns/op plus every custom metric the
# benchmark reports (RT@<load>CPUs, loss@<load>CPUs, tailPct, B/op,
# allocs/op, ...). Optimisation PRs regenerate the file and diff it
# against the committed BENCH_baseline.json to prove their claims.
#
# Usage: scripts/bench.sh [output.json]
#        scripts/bench.sh -compare BENCH_baseline.json [output.json]
#        scripts/bench.sh -fleet
#   BENCHTIME=1x   iterations per benchmark (go test -benchtime)
#   BENCH='.'      benchmark filter regexp   (go test -bench)
#   PKGS='...'     packages to benchmark
#   THRESHOLD=20   -compare: max tolerated ns/op regression, in percent
#   FLOOR=1000000  -fleet: minimum sustained obs/s at 100k streams
#   OVERHEAD=10    -fleet: max tolerated health-sketch overhead, in
#                  percent of the no-health ingestion rate
#
# -fleet is the quick CI mode: it runs the fleet ingestion and health
# benchmarks and fails unless (a) ingestion at 100k streams — with the
# health sketch on, the production default — sustains at least FLOOR
# observations per second, and (b) the sketch costs less than OVERHEAD
# percent of the ingestion rate measured with health disabled.
#
# In -compare mode the suite runs as usual, results land in the output
# file (default BENCH_current.json so the baseline is never clobbered),
# and a per-benchmark ns/op delta table against the given baseline is
# printed. Any benchmark slower than THRESHOLD percent fails the run
# with exit status 1 — wire it after a perf PR to prove no regression.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "-fleet" ]; then
    FLOOR="${FLOOR:-1000000}"
    OVERHEAD="${OVERHEAD:-10}"
    TMP="$(mktemp)"
    trap 'rm -f "$TMP"' EXIT
    go test -run '^$' -bench 'FleetObserve|HealthSnapshot' -benchtime "${BENCHTIME:-1s}" \
        ./internal/fleet | tee "$TMP"
    awk -v floor="$FLOOR" -v overhead="$OVERHEAD" '
    /^BenchmarkFleetObserve\/streams=100000/ {
        for (i = 1; i < NF; i++) if ($(i + 1) == "obs/s") rate = $i
    }
    /^BenchmarkFleetObserveNoHealth\/streams=100000/ {
        for (i = 1; i < NF; i++) if ($(i + 1) == "obs/s") bare = $i
    }
    /^BenchmarkHealthSnapshot\/streams=100000/ {
        for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") snap = $i
    }
    END {
        if (rate == "") { print "bench.sh: no obs/s metric for streams=100000" > "/dev/stderr"; exit 2 }
        printf "fleet ingestion at 100k streams: %.0f obs/s (floor %d)\n", rate, floor
        fail = 0
        if (rate + 0 < floor + 0) { print "bench.sh: below the fleet ingestion floor" > "/dev/stderr"; fail = 1 }
        if (bare != "") {
            pct = (bare - rate) * 100 / bare
            printf "health sketch overhead: %.1f%% of the no-health rate %.0f obs/s (cap %d%%)\n", pct, bare, overhead
            if (pct > overhead + 0) { print "bench.sh: health sketch overhead above the cap" > "/dev/stderr"; fail = 1 }
        }
        if (snap != "") printf "health snapshot at 100k streams: %.2f ms\n", snap / 1e6
        exit fail
    }' "$TMP"
    exit 0
fi

BASELINE=""
if [ "${1:-}" = "-compare" ]; then
    BASELINE="${2:?usage: bench.sh -compare BASELINE.json [output.json]}"
    [ -r "$BASELINE" ] || { echo "bench.sh: baseline $BASELINE not readable" >&2; exit 2; }
    OUT="${3:-BENCH_current.json}"
    if [ "$OUT" = "$BASELINE" ]; then
        echo "bench.sh: refusing to overwrite the baseline $BASELINE" >&2; exit 2
    fi
else
    OUT="${1:-BENCH_baseline.json}"
fi
BENCH="${BENCH:-.}"
BENCHTIME="${BENCHTIME:-1x}"
THRESHOLD="${THRESHOLD:-20}"
PKGS="${PKGS:-. ./internal/core ./internal/des ./internal/fleet ./internal/journal ./internal/metrics ./internal/stats}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# -run '^$' skips tests; benchmarks print one line each:
#   BenchmarkName-8  iters  1234 ns/op  8.75 RT@9CPUs:SRAA(...)
# shellcheck disable=SC2086
go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" $PKGS | tee "$TMP"

awk -v goversion="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"go\": \"%s\",\n  \"benchtime\": \"'"$BENCHTIME"'\",\n  \"benchmarks\": {\n", goversion
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)      # strip the GOMAXPROCS suffix
    ns = "null"; metrics = ""
    for (i = 3; i < NF; i += 2) {   # (value, unit) pairs after the iteration count
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") {
            ns = val
        } else {
            metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), unit, val)
        }
    }
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", name, ns
    if (metrics != "") printf ", \"metrics\": {%s}", metrics
    printf "}"
}
END { printf "\n  }\n}\n" }
' "$TMP" > "$OUT"

echo "wrote $OUT ($(grep -c 'ns_per_op' "$OUT") benchmarks)"

[ -n "$BASELINE" ] || exit 0

# extract_ns prints "name ns_per_op" pairs from a bench JSON file,
# sorted by name for join(1).
extract_ns() {
    sed -n 's/^    "\([^"]*\)": {"ns_per_op": \([0-9.]*\).*/\1 \2/p' "$1" | sort
}

BASE_NS="$(mktemp)"; CUR_NS="$(mktemp)"
trap 'rm -f "$TMP" "$BASE_NS" "$CUR_NS"' EXIT
extract_ns "$BASELINE" > "$BASE_NS"
extract_ns "$OUT" > "$CUR_NS"

added=$(join -v2 "$BASE_NS" "$CUR_NS" | awk '{print $1}')
removed=$(join -v1 "$BASE_NS" "$CUR_NS" | awk '{print $1}')
[ -z "$added" ] || printf 'new benchmark (no baseline): %s\n' $added
[ -z "$removed" ] || printf 'benchmark missing from this run: %s\n' $removed

echo
echo "ns/op deltas vs $BASELINE (threshold ${THRESHOLD}%):"
join "$BASE_NS" "$CUR_NS" | awk -v thr="$THRESHOLD" '
BEGIN {
    printf "%-60s %14s %14s %9s\n", "benchmark", "baseline", "current", "delta%"
    worst = 0; fails = 0
}
{
    base = $2; cur = $3
    delta = (base > 0) ? (cur - base) * 100 / base : 0
    flag = ""
    if (delta > thr) { flag = "  REGRESSION"; fails++ }
    if (delta > worst) worst = delta
    printf "%-60s %14.1f %14.1f %+8.1f%%%s\n", $1, base, cur, delta, flag
}
END {
    printf "\nworst delta: %+.1f%% (threshold %s%%)\n", worst, thr
    if (fails > 0) {
        printf "%d benchmark(s) regressed past the threshold\n", fails
        exit 1
    }
}
'
