#!/usr/bin/env bash
# bench.sh runs the repository's benchmark suite and distills the
# output into a machine-readable JSON baseline: one entry per
# benchmark, mapping to its ns/op plus every custom metric the
# benchmark reports (RT@<load>CPUs, loss@<load>CPUs, tailPct, B/op,
# allocs/op, ...). Optimisation PRs regenerate the file and diff it
# against the committed BENCH_baseline.json to prove their claims.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=1x   iterations per benchmark (go test -benchtime)
#   BENCH='.'      benchmark filter regexp   (go test -bench)
#   PKGS='...'     packages to benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_baseline.json}"
BENCH="${BENCH:-.}"
BENCHTIME="${BENCHTIME:-1x}"
PKGS="${PKGS:-. ./internal/core ./internal/des ./internal/journal ./internal/metrics ./internal/stats}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# -run '^$' skips tests; benchmarks print one line each:
#   BenchmarkName-8  iters  1234 ns/op  8.75 RT@9CPUs:SRAA(...)
# shellcheck disable=SC2086
go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" $PKGS | tee "$TMP"

awk -v goversion="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"go\": \"%s\",\n  \"benchtime\": \"'"$BENCHTIME"'\",\n  \"benchmarks\": {\n", goversion
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)      # strip the GOMAXPROCS suffix
    ns = "null"; metrics = ""
    for (i = 3; i < NF; i += 2) {   # (value, unit) pairs after the iteration count
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") {
            ns = val
        } else {
            metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), unit, val)
        }
    }
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", name, ns
    if (metrics != "") printf ", \"metrics\": {%s}", metrics
    printf "}"
}
END { printf "\n  }\n}\n" }
' "$TMP" > "$OUT"

echo "wrote $OUT ($(grep -c 'ns_per_op' "$OUT") benchmarks)"
