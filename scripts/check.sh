#!/usr/bin/env bash
# check.sh runs the full verification ladder for this repository:
# build, go vet, the rejuvlint static-analysis suite, the test suite
# (shuffled, to surface test-order dependence), race-detector passes
# (including the statistical conformance suite), the seed-pinned
# shift-conformance laws, the scheduler-conformance laws, and a short
# fuzz smoke
# of the existing fuzz targets — including the rejuvlint annotation and
# directive grammar — so they are exercised beyond their seed corpora.
#
# Usage: scripts/check.sh
#   FUZZTIME=5s scripts/check.sh   # longer fuzz smoke (default 3s/target)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== rejuvlint ./..."
go run ./cmd/rejuvlint ./...

echo "== go test -shuffle=on ./..."
go test -shuffle=on -count=1 ./...

echo "== go test -race -short ./... (short race pass)"
go test -race -short -count=1 ./...

echo "== go test -race ./internal/metrics . (observability race pass)"
go test -race -count=1 ./internal/metrics .

echo "== go test -race ./internal/conformance (conformance race pass)"
go test -race -count=1 ./internal/conformance

echo "== shift-conformance laws (pure shift, aging-through-shift, confusion matrix, faulted rebaselines)"
go test -count=1 -run 'TestShiftLaw|TestShiftFault' -v ./internal/conformance | grep -E '^(--- (PASS|FAIL)|ok|FAIL)' || {
    echo "shift-conformance pass FAILED"; exit 1;
}

echo "== scheduler-conformance laws (capacity budget under faults, starvation latch, rho monotonicity, bounded loss + replay)"
go test -count=1 -run 'TestSchedLaw' -v ./internal/conformance | grep -E '^(--- (PASS|FAIL)|ok|FAIL)' || {
    echo "scheduler-conformance pass FAILED"; exit 1;
}

echo "== flight-recorder replay determinism (all detectors, 3 seeds)"
go test -run 'TestReplayDeterminism|TestReplayJournalIdenticalAcrossGOMAXPROCS' -count=1 -v ./internal/journal | grep -E '^(=== RUN|--- (PASS|FAIL)|ok|FAIL)' || {
    echo "replay determinism pass FAILED"; exit 1;
}

echo "== fuzz smoke (${FUZZTIME:-3s} per target)"
for pkg in ./internal/core ./internal/stats ./internal/journal ./internal/faults ./internal/lint ./internal/sched; do
    for target in $(go test -list '^Fuzz' "$pkg" | grep '^Fuzz'); do
        echo "-- fuzz $pkg $target"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime="${FUZZTIME:-3s}" "$pkg"
    done
done

echo "ALL CHECKS PASSED"
