package rejuv_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"rejuv"
)

// TestMonitorCooldownBoundary pins the cooldown window edge: a trigger
// arriving exactly when the window expires is delivered, not
// suppressed — the window is [LastTrigger, LastTrigger+Cooldown), open
// on the right.
func TestMonitorCooldownBoundary(t *testing.T) {
	now := time.Unix(1000, 0)
	triggers := 0
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  testDetector(t),
		OnTrigger: func(rejuv.Trigger) { triggers++ },
		Cooldown:  10 * time.Second,
		Now:       func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(100)
	m.Observe(100) // first trigger at t=1000
	if triggers != 1 {
		t.Fatalf("%d triggers after warmup, want 1", triggers)
	}
	// One nanosecond before expiry: still suppressed.
	now = now.Add(10*time.Second - time.Nanosecond)
	m.Observe(100)
	m.Observe(100)
	if triggers != 1 {
		t.Fatalf("trigger delivered %v before cooldown expiry", time.Nanosecond)
	}
	// Exactly at expiry: delivered.
	now = now.Add(time.Nanosecond)
	m.Observe(100)
	m.Observe(100)
	if triggers != 2 {
		t.Fatal("trigger exactly at cooldown expiry was suppressed")
	}
	s := m.Stats()
	if s.Triggers != 2 || s.Suppressed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// detectorFamilies builds one fresh detector per family, mirroring the
// conformance harness reference parameters.
func detectorFamilies(t *testing.T) map[string]func() rejuv.Detector {
	t.Helper()
	base := rejuv.Baseline{Mean: 5, StdDev: 5}
	must := func(d rejuv.Detector, err error) rejuv.Detector {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	return map[string]func() rejuv.Detector{
		"SRAA": func() rejuv.Detector {
			return must(rejuv.NewSRAA(rejuv.SRAAConfig{SampleSize: 4, Buckets: 5, Depth: 3, Baseline: base}))
		},
		"SARAA": func() rejuv.Detector {
			return must(rejuv.NewSARAA(rejuv.SARAAConfig{InitialSampleSize: 6, Buckets: 5, Depth: 3, Baseline: base}))
		},
		"Static": func() rejuv.Detector {
			return must(rejuv.NewStaticDetector(5, 3, base))
		},
		"CLTA": func() rejuv.Detector {
			return must(rejuv.NewCLTA(rejuv.CLTAConfig{SampleSize: 10, Quantile: 1.96, Baseline: base}))
		},
		"Shewhart": func() rejuv.Detector {
			return must(rejuv.NewShewhart(3, base))
		},
		"EWMA": func() rejuv.Detector {
			return must(rejuv.NewEWMA(0.2, 3, base))
		},
		"CUSUM": func() rejuv.Detector {
			return must(rejuv.NewCUSUM(0.5, 5, base))
		},
		"Adaptive": func() rejuv.Detector {
			return must(rejuv.NewAdaptive(16, func(b rejuv.Baseline) (rejuv.Detector, error) {
				return rejuv.NewSRAA(rejuv.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: b})
			}))
		},
	}
}

// finiteInternals asserts that an instrumented detector's state carries
// no NaN or Inf.
func finiteInternals(t *testing.T, family string, d rejuv.Detector) {
	t.Helper()
	in, ok := d.(rejuv.Instrumented)
	if !ok {
		t.Fatalf("%s: detector is not Instrumented", family)
	}
	snap := in.Internals()
	for name, v := range map[string]float64{"Target": snap.Target, "Statistic": snap.Statistic} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s: internals field %s is non-finite: %v", family, name, v)
		}
	}
}

// TestHygieneAcrossFamilies pins the hygiene contract for every
// detector family: under HygieneReject a stream salted with NaN and
// ±Inf produces exactly the trigger count of the clean stream and
// leaves the detector internals finite; under HygieneClamp internals
// stay finite too; under HygieneOff the poison reaches the detector
// (legacy behaviour) but must still never panic.
func TestHygieneAcrossFamilies(t *testing.T) {
	poisons := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	clean := make([]float64, 120)
	for i := range clean {
		clean[i] = 5 + float64(i%3) // mild healthy noise around the mean
	}

	for family, build := range detectorFamilies(t) {
		t.Run(family, func(t *testing.T) {
			countTriggers := func(h rejuv.Hygiene, salt bool) (int, rejuv.MonitorStats, rejuv.Detector) {
				det := build()
				triggers := 0
				m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
					Detector:  det,
					OnTrigger: func(rejuv.Trigger) { triggers++ },
					Hygiene:   h,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, x := range clean {
					if salt && i%7 == 3 {
						m.Observe(poisons[i%len(poisons)])
					}
					m.Observe(x)
				}
				return triggers, m.Stats(), det
			}

			cleanTriggers, _, _ := countTriggers(rejuv.HygieneReject, false)

			rejTriggers, rejStats, rejDet := countTriggers(rejuv.HygieneReject, true)
			if rejTriggers != cleanTriggers {
				t.Errorf("HygieneReject: %d triggers with poison, %d clean — rejection must be invisible to the detector",
					rejTriggers, cleanTriggers)
			}
			if rejStats.Rejected == 0 {
				t.Error("HygieneReject: poisoned stream counted zero rejections")
			}
			finiteInternals(t, family, rejDet)

			_, clampStats, clampDet := countTriggers(rejuv.HygieneClamp, true)
			if clampStats.Rejected == 0 {
				t.Error("HygieneClamp: poisoned stream counted zero interceptions")
			}
			finiteInternals(t, family, clampDet)

			// Legacy pass-through: no panic is the only guarantee.
			_, offStats, _ := countTriggers(rejuv.HygieneOff, true)
			if offStats.Rejected != 0 {
				t.Errorf("HygieneOff: counted %d rejections, want 0", offStats.Rejected)
			}
		})
	}
}

// TestHygieneClampSubstitutesLastValue pins the clamp policy at the
// detector boundary: the detector sees the previous admitted value in
// place of the poison.
func TestHygieneClampSubstitutesLastValue(t *testing.T) {
	var mean float64
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  testDetector(t), // SRAA n=1: every observation is a sample
		OnTrigger: func(tr rejuv.Trigger) { mean = tr.Decision.SampleMean },
		Hygiene:   rejuv.HygieneClamp,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(100)        // fills the single bucket slot
	m.Observe(math.NaN()) // clamped to 100: overflows, triggers
	if mean != 100 {
		t.Fatalf("clamped sample mean = %v, want 100", mean)
	}
	if s := m.Stats(); s.Rejected != 1 || s.Triggers != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Clamp before any admitted value degrades to rejection.
	m2, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  testDetector(t),
		OnTrigger: func(rejuv.Trigger) {},
		Hygiene:   rejuv.HygieneClamp,
	})
	if err != nil {
		t.Fatal(err)
	}
	m2.Observe(math.Inf(1))
	if s := m2.Stats(); s.Rejected != 1 {
		t.Fatalf("leading poison under clamp: stats = %+v", s)
	}
}

// TestMonitorStallWatchdog pins the staleness watchdog: silence longer
// than MaxSilence trips it once, an observation clears it, and a later
// silence trips it again.
func TestMonitorStallWatchdog(t *testing.T) {
	now := time.Unix(5000, 0)
	var stalls []time.Duration
	reg := rejuv.NewRegistry()
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:   testDetector(t),
		OnTrigger:  func(rejuv.Trigger) {},
		Now:        func() time.Time { return now },
		MaxSilence: 30 * time.Second,
		OnStall:    func(s time.Duration) { stalls = append(stalls, s) },
		Collector:  rejuv.NewCollector(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.CheckStall() {
		t.Fatal("watchdog stalled before it was armed")
	}
	m.Observe(1)
	now = now.Add(10 * time.Second)
	if m.CheckStall() {
		t.Fatal("watchdog tripped inside the allowed silence")
	}
	now = now.Add(25 * time.Second) // 35 s since the observation
	if !m.CheckStall() {
		t.Fatal("watchdog did not trip after MaxSilence")
	}
	if m.CheckStall() != true || len(stalls) != 1 {
		t.Fatalf("stall did not latch: OnStall ran %d times", len(stalls))
	}
	if stalls[0] != 35*time.Second {
		t.Errorf("OnStall silence = %v, want 35s", stalls[0])
	}
	if got := collectorValue(t, reg, "rejuv_stream_stalled"); got != 1 {
		t.Errorf("rejuv_stream_stalled = %v, want 1 while stalled", got)
	}
	m.Observe(1) // stream resumes
	if m.CheckStall() {
		t.Fatal("watchdog still stalled after the stream resumed")
	}
	if got := collectorValue(t, reg, "rejuv_stream_stalled"); got != 0 {
		t.Errorf("rejuv_stream_stalled = %v, want 0 after resume", got)
	}
	now = now.Add(31 * time.Second)
	if !m.CheckStall() {
		t.Fatal("watchdog did not trip on the second silence")
	}
	if s := m.Stats(); s.Stalls != 2 {
		t.Fatalf("stats.Stalls = %d, want 2", s.Stalls)
	}
	if got := collectorValue(t, reg, "rejuv_stalls_total"); got != 2 {
		t.Errorf("rejuv_stalls_total = %v, want 2", got)
	}
}

// TestMonitorSurvivesTriggerPanic pins panic isolation: a panicking
// OnTrigger is recovered, counted, and does not poison the monitor for
// later observations.
func TestMonitorSurvivesTriggerPanic(t *testing.T) {
	calls := 0
	reg := rejuv.NewRegistry()
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  testDetector(t),
		OnTrigger: func(rejuv.Trigger) { calls++; panic("restart hook exploded") },
		Collector: rejuv.NewCollector(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	deliver := func() {
		m.Observe(100)
		m.Observe(100)
	}
	deliver()
	deliver() // the monitor must still work after the first panic
	if calls != 2 {
		t.Fatalf("OnTrigger ran %d times, want 2", calls)
	}
	s := m.Stats()
	if s.TriggerPanics != 2 || s.Triggers != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if got := collectorValue(t, reg, "rejuv_trigger_panics_total"); got != 2 {
		t.Errorf("rejuv_trigger_panics_total = %v, want 2", got)
	}
}

// TestMonitorRejectedJournalsFault pins the journal contract for
// rejected observations: the poison becomes a KindFault record, never
// an Observe record, so replay stays byte-identical to a clean run.
func TestMonitorRejectedJournalsFault(t *testing.T) {
	now := time.Unix(0, 0)
	var buf bytes.Buffer
	jw := rejuv.NewJournalWriter(&buf, rejuv.JournalMeta{CreatedBy: "harden_test"})
	m, err := rejuv.NewMonitor(rejuv.MonitorConfig{
		Detector:  testDetector(t),
		OnTrigger: func(rejuv.Trigger) {},
		Now:       func() time.Time { return now },
		Journal:   jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(5)
	now = now.Add(time.Second)
	m.Observe(math.NaN())
	now = now.Add(time.Second)
	m.Observe(math.Inf(-1))
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	jr, err := rejuv.NewJournalReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := jr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var observes, faults int
	var classes []string
	for _, r := range recs {
		switch r.Kind {
		case rejuv.JournalKindObserve:
			observes++
		case rejuv.JournalKindFault:
			faults++
			classes = append(classes, r.Class)
		}
	}
	if observes != 1 {
		t.Errorf("journal has %d observe records, want 1 (poison must not be journaled as observations)", observes)
	}
	if faults != 2 || classes[0] != "nan" || classes[1] != "-inf" {
		t.Errorf("fault records = %d %v, want [nan -inf]", faults, classes)
	}
}
