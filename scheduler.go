package rejuv

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"rejuv/internal/journal"
	"rejuv/internal/sched"
)

// This file is the scheduling layer between trigger sources (a Monitor
// per replica, or a fleet Engine's trigger queue) and the Actuators
// that restart things. A trigger says "this replica should be
// rejuvenated"; the Scheduler decides WHETHER (coalescing duplicates,
// refusing saturated floods), WHEN (capacity budget, deadline windows,
// starvation latch) and HOW MUCH (the Kijima tier ladder: minor /
// medium / major actions chosen by detector severity). Every decision
// is journaled so a production incident can be replayed and verified
// against the pure governor with ReplaySchedJournal.

// SchedulerPolicy parameterizes the scheduling governor: replica
// groups, capacity budget, queue depth, deferral windows and the
// action-tier ladder. The zero value of every field has a usable
// default; see OneDownPolicy and ScheduledPolicy for canned policies.
type SchedulerPolicy = sched.Config

// SchedulerTier is one rung of the Kijima action ladder: a rejuvenation
// action that rolls back a fraction Rho of the replica's accumulated
// aging at a cost of PauseFrac of the full restart pause.
type SchedulerTier = sched.Tier

// SchedulerTransition is one journaled state transition of the
// scheduling governor; OnTransition observes the stream of them.
type SchedulerTransition = sched.Transition

// SchedulerOp enumerates scheduling transitions.
type SchedulerOp = sched.Op

// Scheduling transition ops, re-exported for OnTransition consumers.
const (
	SchedOpEnqueue    = sched.OpEnqueue
	SchedOpDefer      = sched.OpDefer
	SchedOpCoalesce   = sched.OpCoalesce
	SchedOpStart      = sched.OpStart
	SchedOpComplete   = sched.OpComplete
	SchedOpQuarantine = sched.OpQuarantine
	SchedOpReadmit    = sched.OpReadmit
)

// Defer and coalesce reason strings, re-exported for OnTransition
// consumers and journal analysis.
const (
	SchedReasonBudget      = sched.ReasonBudget
	SchedReasonDeadline    = sched.ReasonDeadline
	SchedReasonFloor       = sched.ReasonFloor
	SchedReasonSaturated   = sched.ReasonSaturated
	SchedReasonInFlight    = sched.ReasonInFlight
	SchedReasonQuarantined = sched.ReasonQuarantined
	SchedReasonDuplicate   = sched.ReasonDuplicate
	SchedReasonStarved     = sched.ReasonStarved
	SchedReasonMaxDefer    = sched.ReasonMaxDefer
)

// OneDownPolicy returns the legacy rolling-restart policy: at most one
// replica down at a time, every action a full restart of the given
// pause (seconds), no deferral windows and no starvation latch.
func OneDownPolicy(replicas int, pause float64) SchedulerPolicy {
	return sched.OneDown(replicas, pause)
}

// ScheduledPolicy returns the cost-aware policy: one replica down at a
// time, the three-tier Kijima ladder over the given full pause
// (seconds), a half-capacity floor and a starvation latch of ten full
// pauses.
func ScheduledPolicy(replicas int, pause float64) SchedulerPolicy {
	return sched.Scheduled(replicas, pause)
}

// DefaultSchedulerTiers returns the three-tier Kijima ladder (minor,
// medium, major) used by ScheduledPolicy.
func DefaultSchedulerTiers() []SchedulerTier { return sched.DefaultTiers() }

// FullRestartTiers returns the single-tier ladder where every action is
// a full restart, used by OneDownPolicy.
func FullRestartTiers() []SchedulerTier { return sched.FullRestartTiers() }

// SchedulerStats is a running census of scheduling transitions.
type SchedulerStats = sched.Stats

// SchedulerConfig configures a Scheduler.
type SchedulerConfig struct {
	// Policy is the scheduling policy. Policy.Replicas is required.
	Policy SchedulerPolicy
	// Actuators holds one Actuator per replica, indexed by replica
	// number. Required, length Policy.Replicas, no nil entries. The
	// scheduler owns executions: do not call ExecuteFor or Trigger on
	// them directly while the scheduler runs.
	Actuators []*Actuator
	// Now supplies the time; nil means time.Now. Tests inject a fake —
	// but note the deferral wake-up timer runs on the wall clock, so
	// tests with a fake clock should drive deferrals with Tick.
	Now func() time.Time
	// Epoch is the zero point for journal timestamps (seconds since
	// Epoch). The zero value means the scheduler's construction time.
	Epoch time.Time
	// Journal, when non-nil, records every scheduling transition to the
	// flight recorder. Replay it with ReplaySchedJournal to verify the
	// schedule was computed correctly.
	Journal *JournalWriter
	// OnTransition, when non-nil, observes every transition
	// synchronously under the scheduler's lock. Keep it short.
	OnTransition func(SchedulerTransition)
	// OnQuarantine, when non-nil, runs — asynchronously — when a
	// replica is quarantined after its actuator gave up. Page somebody:
	// the replica is aging, unrestartable, and shed from the capacity
	// budget until Readmit is called.
	OnQuarantine func(replica int, err error)
}

// Scheduler routes rejuvenation triggers through a scheduling governor
// to per-replica Actuators. It is safe for concurrent use. Construct
// with NewScheduler, feed it triggers via Request (or wire OnTrigger
// on each replica's Monitor to the TriggerFunc adapter), and Close it
// when done.
//
// Failed executions re-enter the queue; exhausted ones (the actuator
// gave up — ErrActuatorGaveUp) quarantine the replica, shedding it
// from the capacity budget so the governor never waits on a restart
// that cannot happen. Readmit returns a repaired replica to service.
type Scheduler struct {
	cfg   SchedulerConfig
	epoch time.Time

	mu     sync.Mutex
	gov    *sched.Governor // guarded by mu
	timer  *time.Timer     // guarded by mu
	closed bool            // guarded by mu
	wg     sync.WaitGroup
}

// NewScheduler validates the config and returns a running Scheduler.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	gov, err := sched.New(cfg.Policy)
	if err != nil {
		return nil, err
	}
	replicas := gov.Config().Replicas
	if len(cfg.Actuators) != replicas {
		return nil, fmt.Errorf("rejuv: scheduler needs %d actuators (one per replica), got %d",
			replicas, len(cfg.Actuators))
	}
	for i, a := range cfg.Actuators {
		if a == nil {
			return nil, fmt.Errorf("rejuv: scheduler actuator %d is nil", i)
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Scheduler{cfg: cfg, gov: gov, epoch: cfg.Epoch}
	if s.epoch.IsZero() {
		s.epoch = cfg.Now()
	}
	return s, nil
}

// now returns the current journal timestamp in seconds since the epoch.
func (s *Scheduler) now() float64 { return s.cfg.Now().Sub(s.epoch).Seconds() }

// Policy returns the defaulted, validated scheduling policy in effect.
func (s *Scheduler) Policy() SchedulerPolicy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gov.Config()
}

// Stats returns the running transition census.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gov.Stats()
}

// Queued returns the number of queued (waiting) requests.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gov.Queued()
}

// Down returns the number of replicas of the group currently down.
func (s *Scheduler) Down(group int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gov.Down(group)
}

// MaxDownSeen returns the high-water mark of simultaneously down
// replicas of the group — provably ≤ the policy's MaxDown.
func (s *Scheduler) MaxDownSeen(group int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gov.MaxDownSeen(group)
}

// Quarantined returns the number of quarantined replicas of the group.
func (s *Scheduler) Quarantined(group int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gov.Quarantined(group)
}

// InService reports whether the replica is serving (not down, not
// quarantined).
func (s *Scheduler) InService(replica int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gov.InService(replica)
}

// Request asks the scheduler to rejuvenate a replica. Level and fill
// are the detector state behind the request (higher level → more
// urgent, a deeper action tier); triggerID correlates the resulting
// journal records with the detector decision that raised it. The
// request may start immediately, queue, coalesce into an already
// queued request, or be refused (always journaled, never silent).
func (s *Scheduler) Request(replica, level, fill int, triggerID uint64) {
	s.RequestDeadline(replica, level, fill, time.Time{}, triggerID)
}

// RequestDeadline is Request with a QoS deadline: the action is
// deferred while work in flight on the replica is due to finish before
// the deadline, unless the starvation latch escalates it first. The
// zero deadline means none.
func (s *Scheduler) RequestDeadline(replica, level, fill int, deadline time.Time, triggerID uint64) {
	var d float64
	if !deadline.IsZero() {
		d = deadline.Sub(s.epoch).Seconds()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.apply(s.gov.Request(s.now(), replica, level, fill, d, triggerID))
}

// TriggerFunc adapts the scheduler to a Monitor: wire the returned
// function to MonitorConfig.OnTrigger on the monitor watching the
// given replica and every trigger becomes a scheduling request.
func (s *Scheduler) TriggerFunc(replica int) func(Trigger) {
	return func(t Trigger) {
		s.Request(replica, t.Decision.Level, t.Decision.Fill, t.ID)
	}
}

// FleetTriggerFunc adapts the scheduler to a fleet Engine's trigger
// queue: replicaOf maps a fleet stream id to the scheduler's replica
// number (return a negative replica to drop the trigger).
func (s *Scheduler) FleetTriggerFunc(replicaOf func(stream StreamID) int) func(FleetTrigger) {
	return func(t FleetTrigger) {
		if r := replicaOf(t.Stream); r >= 0 {
			s.Request(r, t.Decision.Level, t.Decision.Fill, t.ID)
		}
	}
}

// Readmit returns a quarantined replica to service after repair,
// restoring its share of the capacity budget.
func (s *Scheduler) Readmit(replica int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.apply(s.gov.Readmit(s.now(), replica))
}

// Tick re-evaluates deferred work now. The scheduler arms a wall-clock
// timer for the next deferral wake-up by itself; Tick exists for tests
// with fake clocks and for callers who want an immediate re-scan.
func (s *Scheduler) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.apply(s.gov.Tick(s.now()))
}

// Close stops the scheduler: the wake-up timer is cancelled, new
// requests are ignored, and the call blocks until in-flight actuator
// executions return. Their outcomes are still recorded.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// apply journals and publishes a transition group, then launches the
// actuations it dispatched. Callers hold s.mu. The whole group is
// journaled before any execution starts, so nested groups (an
// execution completing) land strictly after their parent in the
// journal — replay depends on this ordering.
//
//lint:holds mu
func (s *Scheduler) apply(trs []SchedulerTransition) {
	for _, tr := range trs {
		if jw := s.cfg.Journal; jw != nil {
			jw.Record(journal.SchedRecord(tr))
		}
		if s.cfg.OnTransition != nil {
			s.cfg.OnTransition(tr)
		}
	}
	s.rearm()
	if s.closed {
		// A completion arriving during Close may dispatch queued work;
		// journal it but do not launch new executions on a scheduler
		// that is shutting down.
		return
	}
	for _, tr := range trs {
		if tr.Op == sched.OpStart {
			s.wg.Add(1)
			go s.execute(tr.Replica, tr.TriggerID)
		}
	}
}

// execute runs one dispatched action on the replica's actuator and
// feeds the outcome back into the governor.
func (s *Scheduler) execute(replica int, triggerID uint64) {
	defer s.wg.Done()
	err := s.cfg.Actuators[replica].ExecuteFor(context.Background(), triggerID)

	s.mu.Lock()
	switch {
	case err == nil:
		s.apply(s.gov.Complete(s.now(), replica, true))
	case errors.Is(err, ErrActuatorGaveUp):
		// Terminal: every attempt failed. Quarantine the replica and
		// shed it from the capacity budget — retrying a restart that
		// cannot happen would starve the rest of the group.
		s.apply(s.gov.GiveUp(s.now(), replica, err.Error()))
	default:
		// Cancelled or shut down mid-execution: the replica still needs
		// rejuvenation, so the request re-enters the queue.
		s.apply(s.gov.Complete(s.now(), replica, false))
	}
	closed := s.closed
	hook := s.cfg.OnQuarantine
	s.mu.Unlock()

	if err != nil && errors.Is(err, ErrActuatorGaveUp) && hook != nil && !closed {
		hook(replica, err)
	}
}

// rearm points the wake-up timer at the governor's next deferral
// horizon. Callers hold s.mu.
//
//lint:holds mu
func (s *Scheduler) rearm() {
	if s.closed {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	wake := s.gov.NextWake(s.now())
	if math.IsInf(wake, 1) {
		return
	}
	delay := time.Duration((wake - s.now()) * float64(time.Second))
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	s.timer = time.AfterFunc(delay, s.Tick)
}

// ReplaySchedJournal re-executes the scheduling transitions recorded in
// a journal against a fresh governor under the given policy and
// verifies the recorded schedule byte-for-byte. See the package
// documentation of internal/journal for the record layout.
func ReplaySchedJournal(r *JournalReader, policy SchedulerPolicy) (SchedReplayReport, error) {
	return journal.ReplaySched(r, policy)
}

// SchedReplayReport is the result of ReplaySchedJournal: the recorded
// transition census, the observed down high-water per group, and the
// first mismatch if the journal diverges from the recomputed schedule.
type SchedReplayReport = journal.SchedReplayReport
