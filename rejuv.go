package rejuv

import (
	"io"

	"rejuv/internal/core"
	"rejuv/internal/ecommerce"
)

// The public API re-exports the internal/core types by alias so the
// implementation, its tests, and the experiment harness can live in
// internal packages while users program against this one.

// Baseline is the normal-behaviour specification of the monitored
// metric: its mean and standard deviation under healthy operation,
// from an SLA or learned with Adaptive.
type Baseline = core.Baseline

// Decision is the outcome of feeding one observation to a Detector.
type Decision = core.Decision

// Hygiene is the policy for non-finite observations (NaN, ±Inf)
// arriving at a Monitor. See MonitorConfig.Hygiene.
type Hygiene = core.Hygiene

// Hygiene policies. The zero value rejects, so a Monitor is hardened by
// default.
const (
	// HygieneReject drops non-finite observations before the detector.
	HygieneReject = core.HygieneReject
	// HygieneClamp substitutes the last admitted value for a non-finite
	// one (falling back to rejection before any value was admitted).
	HygieneClamp = core.HygieneClamp
	// HygieneOff passes observations through unexamined (the legacy
	// behaviour; detector state can be poisoned by a single NaN).
	HygieneOff = core.HygieneOff
)

// Detector consumes metric observations one at a time and decides when
// to trigger rejuvenation. Detectors are single-goroutine state
// machines; use Monitor for concurrent observation.
type Detector = core.Detector

// SRAAConfig parameterizes the static rejuvenation algorithm with
// averaging.
type SRAAConfig = core.SRAAConfig

// SARAAConfig parameterizes the sampling-acceleration rejuvenation
// algorithm with averaging.
type SARAAConfig = core.SARAAConfig

// CLTAConfig parameterizes the central-limit-theorem algorithm.
type CLTAConfig = core.CLTAConfig

// SRAA is the static rejuvenation algorithm with averaging (paper Fig. 6).
type SRAA = core.SRAA

// SARAA is the sampling-acceleration algorithm (paper Fig. 7).
type SARAA = core.SARAA

// CLTA is the central-limit-theorem algorithm (paper Fig. 8).
type CLTA = core.CLTA

// Shewhart is the classical individuals control chart (comparator).
type Shewhart = core.Shewhart

// EWMA is the exponentially weighted moving-average chart (comparator).
type EWMA = core.EWMA

// CUSUM is the one-sided cumulative-sum chart (comparator).
type CUSUM = core.CUSUM

// Adaptive learns the baseline from a warmup window, then delegates to a
// detector built from it.
type Adaptive = core.Adaptive

// NewSRAA returns an SRAA detector.
func NewSRAA(cfg SRAAConfig) (*SRAA, error) { return core.NewSRAA(cfg) }

// NewSARAA returns a SARAA detector.
func NewSARAA(cfg SARAAConfig) (*SARAA, error) { return core.NewSARAA(cfg) }

// NewCLTA returns a CLTA detector.
func NewCLTA(cfg CLTAConfig) (*CLTA, error) { return core.NewCLTA(cfg) }

// NewStaticDetector returns the per-observation static algorithm of the
// authors' earlier work: SRAA with sample size one.
func NewStaticDetector(buckets, depth int, baseline Baseline) (*SRAA, error) {
	return core.NewStatic(buckets, depth, baseline)
}

// NewShewhart returns an individuals chart triggering above
// mean + limit*sd.
func NewShewhart(limit float64, baseline Baseline) (*Shewhart, error) {
	return core.NewShewhart(limit, baseline)
}

// NewEWMA returns an EWMA chart with the given smoothing weight and
// control-limit multiplier.
func NewEWMA(weight, limit float64, baseline Baseline) (*EWMA, error) {
	return core.NewEWMA(weight, limit, baseline)
}

// NewCUSUM returns an upper CUSUM chart with the given allowance (slack)
// and decision interval (threshold), both in standard deviations.
func NewCUSUM(slack, threshold float64, baseline Baseline) (*CUSUM, error) {
	return core.NewCUSUM(slack, threshold, baseline)
}

// NewAdaptive returns a detector that learns the baseline from the first
// warmup observations and then delegates to the detector built by the
// factory.
func NewAdaptive(warmup int, build func(Baseline) (Detector, error)) (*Adaptive, error) {
	return core.NewAdaptive(warmup, build)
}

// ShiftConfig tunes the workload-shift layer of a Rebase detector: the
// EWMA baseline re-estimation, the change-point statistic and the
// shift-versus-aging decision rule. The zero value selects the
// documented defaults.
type ShiftConfig = core.ShiftConfig

// ShiftDetector selects the change-point statistic of the shift layer.
type ShiftDetector = core.ShiftDetector

// Change-point statistics for ShiftConfig.Detector.
const (
	// ShiftCUSUM is the two-sided cumulative-sum statistic (the default).
	ShiftCUSUM = core.ShiftCUSUM
	// ShiftPageHinkley is the two-sided Page–Hinkley statistic.
	ShiftPageHinkley = core.ShiftPageHinkley
)

// Rebase layers online baseline re-estimation under any detector
// family: workload shifts rebaseline the wrapped detector (bucket
// targets and sample sizes recomputed from the re-estimated µ and σ)
// while software aging passes through and triggers as usual.
type Rebase = core.Rebase

// Rebaseliner is implemented by detectors that re-estimate their
// baseline online (Rebase); MonitorStats.Rebaselines counts their
// committed rebaselines and journals record them as rebaseline events.
type Rebaseliner = core.Rebaseliner

// NewRebaseDetector wraps the detector family built by build with the
// workload-shift layer, starting from the given baseline. The factory
// is invoked once up front and again after every committed rebaseline.
func NewRebaseDetector(cfg ShiftConfig, base Baseline, build func(Baseline) (Detector, error)) (*Rebase, error) {
	return core.NewRebase(cfg, base, build)
}

// Tracer wraps a detector and logs every evaluated decision, for
// offline analysis of bucket dynamics.
type Tracer = core.Tracer

// NewTracer wraps a detector so each evaluated sample writes one line
// to w (and triggers are marked), for replaying logs and debugging
// configurations.
func NewTracer(inner Detector, w io.Writer) (*Tracer, error) {
	return core.NewTracer(inner, w)
}

// SimulationConfig parameterizes the paper's e-commerce system model
// (Section 3). The zero value of every field except ArrivalRate takes
// the paper's value (16 CPUs, mu = 0.2/s, 3 GB heap, 10 MB/transaction,
// 100 MB GC threshold, 60 s GC pause, overhead threshold 50 threads,
// factor 2.0, 100,000 transactions).
type SimulationConfig = ecommerce.Config

// SimulationResult aggregates one simulation replication.
type SimulationResult = ecommerce.Result

// ServiceDistribution selects the simulated CPU processing-time
// distribution (exponential by default, per the paper; Erlang-2 and
// hyperexponential variants exist for sensitivity studies).
type ServiceDistribution = ecommerce.ServiceDistribution

// Service-time distributions for SimulationConfig.ServiceDistribution.
const (
	ServiceExponential = ecommerce.ServiceExponential
	ServiceErlang2     = ecommerce.ServiceErlang2
	ServiceHyper2      = ecommerce.ServiceHyper2
)

// Simulate runs one replication of the e-commerce model under the given
// detector; a nil detector disables rejuvenation.
func Simulate(cfg SimulationConfig, detector Detector) (SimulationResult, error) {
	m, err := ecommerce.New(cfg, detector)
	if err != nil {
		return SimulationResult{}, err
	}
	return m.Run()
}

// NewSimulation returns an un-run simulation model so callers can attach
// observation hooks (Model.OnComplete, Model.OnRejuvenate) before Run.
func NewSimulation(cfg SimulationConfig, detector Detector) (*ecommerce.Model, error) {
	return ecommerce.New(cfg, detector)
}

// ClusterConfig parameterizes a multi-host simulation: several copies of
// the e-commerce system behind a router, with per-host detectors and at
// most one host rejuvenating at a time.
type ClusterConfig = ecommerce.ClusterConfig

// ClusterResult aggregates a cluster simulation run.
type ClusterResult = ecommerce.ClusterResult

// Routing selects the cluster router policy.
type Routing = ecommerce.Routing

// Cluster routing policies.
const (
	RouteLeastActive = ecommerce.RouteLeastActive
	RouteRoundRobin  = ecommerce.RouteRoundRobin
)

// SimulateCluster runs a cluster simulation; the factory builds one
// detector per host (nil disables rejuvenation everywhere).
func SimulateCluster(cfg ClusterConfig, factory func(host int) (Detector, error)) (ClusterResult, error) {
	c, err := ecommerce.NewCluster(cfg, factory)
	if err != nil {
		return ClusterResult{}, err
	}
	return c.Run()
}

// NewClusterSimulation returns an un-run cluster model so callers can
// attach the OnRejuvenate hook before Run.
func NewClusterSimulation(cfg ClusterConfig, factory func(host int) (Detector, error)) (*ecommerce.Cluster, error) {
	return ecommerce.NewCluster(cfg, factory)
}
