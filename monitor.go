package rejuv

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Trigger describes one rejuvenation trigger raised by a Monitor.
type Trigger struct {
	// Time is when the trigger fired.
	Time time.Time
	// Decision is the detector decision that fired it.
	Decision Decision
	// Observations is the total number of observations the monitor had
	// consumed when the trigger fired.
	Observations uint64
	// Suppressed reports that the trigger fell inside the cooldown
	// window and the callback was not invoked for it.
	Suppressed bool
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Detector makes the trigger decisions. Required. The monitor owns
	// it after construction: do not observe through it directly.
	Detector Detector
	// OnTrigger runs — synchronously, under the monitor's lock — when
	// the detector triggers outside the cooldown window. Required.
	// Keep it short: start the actual rejuvenation asynchronously.
	OnTrigger func(Trigger)
	// Cooldown suppresses further triggers for this long after one
	// fires, giving the rejuvenated system time to return to normal
	// before it can be condemned again. Zero disables suppression.
	Cooldown time.Duration
	// Now supplies the time; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// MonitorStats is a snapshot of monitor counters.
type MonitorStats struct {
	Observations uint64
	Triggers     uint64
	Suppressed   uint64
	LastTrigger  time.Time
}

// Monitor adapts a Detector for concurrent production use: any goroutine
// may report observations, and the trigger callback fires when the
// detector decides to rejuvenate, rate-limited by a cooldown.
type Monitor struct {
	cfg MonitorConfig

	mu    sync.Mutex
	stats MonitorStats
}

// NewMonitor validates the configuration and returns a monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Detector == nil {
		return nil, fmt.Errorf("rejuv: monitor needs a detector")
	}
	if cfg.OnTrigger == nil {
		return nil, fmt.Errorf("rejuv: monitor needs an OnTrigger callback")
	}
	if cfg.Cooldown < 0 {
		return nil, fmt.Errorf("rejuv: monitor cooldown must be non-negative, got %v", cfg.Cooldown)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Monitor{cfg: cfg}, nil
}

// Observe reports one observation of the monitored metric. Safe for
// concurrent use.
func (m *Monitor) Observe(x float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Observations++
	d := m.cfg.Detector.Observe(x)
	if !d.Triggered {
		return
	}
	now := m.cfg.Now()
	t := Trigger{Time: now, Decision: d, Observations: m.stats.Observations}
	if m.cfg.Cooldown > 0 && !m.stats.LastTrigger.IsZero() &&
		now.Sub(m.stats.LastTrigger) < m.cfg.Cooldown {
		m.stats.Suppressed++
		t.Suppressed = true
		return
	}
	m.stats.Triggers++
	m.stats.LastTrigger = now
	m.cfg.OnTrigger(t)
}

// ObserveDuration reports a duration observation in seconds, the natural
// unit for response times.
func (m *Monitor) ObserveDuration(d time.Duration) {
	m.Observe(d.Seconds())
}

// Reset restores the underlying detector to its initial state (for
// example after an externally initiated restart). Counters are kept.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.Detector.Reset()
}

// Stats returns a snapshot of the monitor counters.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Middleware wraps an http.Handler so every request's wall-clock service
// time is observed — the paper's core prescription: monitor the metric
// the customer experiences, not proxies like CPU or memory.
func (m *Monitor) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := m.cfg.Now()
		next.ServeHTTP(w, r)
		m.Observe(m.cfg.Now().Sub(start).Seconds())
	})
}
