package rejuv

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Trigger describes one rejuvenation trigger raised by a Monitor.
type Trigger struct {
	// Time is when the trigger fired.
	Time time.Time
	// Decision is the detector decision that fired it.
	Decision Decision
	// Observations is the total number of observations the monitor had
	// consumed when the trigger fired.
	Observations uint64
	// Suppressed reports that the trigger fell inside the cooldown
	// window and the callback was not invoked for it.
	Suppressed bool
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Detector makes the trigger decisions. Required. The monitor owns
	// it after construction: do not observe through it directly.
	Detector Detector
	// OnTrigger runs — synchronously, under the monitor's lock — when
	// the detector triggers outside the cooldown window. Required.
	// Keep it short: start the actual rejuvenation asynchronously.
	OnTrigger func(Trigger)
	// Cooldown suppresses further triggers for this long after one
	// fires, giving the rejuvenated system time to return to normal
	// before it can be condemned again. Zero disables suppression.
	Cooldown time.Duration
	// Now supplies the time; nil means time.Now. Tests inject a fake.
	Now func() time.Time
	// Collector, when non-nil, publishes every observation and decision
	// into a metrics Registry: counts, an observed-value histogram,
	// cooldown state and detector internals. See NewCollector.
	Collector *Collector
	// Trace, when non-nil, records every evaluated detector decision
	// (one TraceEntry per completed sample) into the ring buffer, so a
	// fired trigger can be explained after the fact. See NewTraceLog.
	Trace *TraceLog
	// Journal, when non-nil, records every observation and every
	// evaluated decision to the flight recorder, with timestamps in
	// seconds relative to the monitor's first observation. The journal
	// can later be replayed with ReplayJournal to verify the decision
	// stream. See NewJournalWriter.
	Journal *JournalWriter
}

// MonitorStats is a snapshot of monitor counters, taken atomically
// under the monitor lock by Stats.
type MonitorStats struct {
	// Observations counts every value fed to Observe.
	Observations uint64
	// Triggers counts triggers delivered to OnTrigger.
	Triggers uint64
	// Suppressed counts triggers eaten by the cooldown window.
	Suppressed uint64
	// LastTrigger is the time of the most recent delivered (not
	// suppressed) trigger; it is the zero time before the first one.
	LastTrigger time.Time
}

// Monitor adapts a Detector for concurrent production use: any goroutine
// may report observations, and the trigger callback fires when the
// detector decides to rejuvenate, rate-limited by a cooldown.
type Monitor struct {
	cfg MonitorConfig

	mu    sync.Mutex
	stats MonitorStats
	// epoch anchors journal timestamps at the first observation; the
	// zero value means no observation was journaled yet.
	epoch time.Time
}

// NewMonitor validates the configuration and returns a monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Detector == nil {
		return nil, fmt.Errorf("rejuv: monitor needs a detector")
	}
	if cfg.OnTrigger == nil {
		return nil, fmt.Errorf("rejuv: monitor needs an OnTrigger callback")
	}
	if cfg.Cooldown < 0 {
		return nil, fmt.Errorf("rejuv: monitor cooldown must be non-negative, got %v", cfg.Cooldown)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Monitor{cfg: cfg}, nil
}

// Observe reports one observation of the monitored metric. Safe for
// concurrent use.
func (m *Monitor) Observe(x float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Observations++
	d := m.cfg.Detector.Observe(x)
	if !d.Triggered && m.cfg.Collector == nil && m.cfg.Trace == nil && m.cfg.Journal == nil {
		return // the common un-instrumented fast path needs no clock
	}
	now := m.cfg.Now()
	suppressed := d.Triggered && m.inCooldown(now)
	if d.Triggered {
		if suppressed {
			m.stats.Suppressed++
		} else {
			m.stats.Triggers++
			m.stats.LastTrigger = now
		}
	}
	if c := m.cfg.Collector; c != nil {
		c.observe(x, d, m.cfg.Detector, suppressed, m.inCooldown(now))
	}
	if tl := m.cfg.Trace; tl != nil && d.Evaluated {
		tl.Record(m.traceEntry(now, x, d, suppressed))
	}
	if jw := m.cfg.Journal; jw != nil {
		if m.epoch.IsZero() {
			m.epoch = now
		}
		t := now.Sub(m.epoch).Seconds()
		jw.Observe(t, x)
		if d.Evaluated || d.Triggered {
			var in DetectorInternals
			if instr, ok := m.cfg.Detector.(Instrumented); ok {
				in = instr.Internals()
			}
			jw.Decision(t, d, in, suppressed)
		}
	}
	if d.Triggered && !suppressed {
		m.cfg.OnTrigger(Trigger{Time: now, Decision: d, Observations: m.stats.Observations})
	}
}

// inCooldown reports whether now falls inside the cooldown window of
// the last delivered trigger. Callers hold m.mu.
func (m *Monitor) inCooldown(now time.Time) bool {
	return m.cfg.Cooldown > 0 && !m.stats.LastTrigger.IsZero() &&
		now.Sub(m.stats.LastTrigger) < m.cfg.Cooldown
}

// traceEntry assembles the trace record for one evaluated decision,
// folding in detector internals when available. Callers hold m.mu.
func (m *Monitor) traceEntry(now time.Time, x float64, d Decision, suppressed bool) TraceEntry {
	e := TraceEntry{
		Observation: m.stats.Observations,
		Time:        now,
		Value:       x,
		SampleMean:  d.SampleMean,
		Target:      d.Target,
		Level:       d.Level,
		Fill:        d.Fill,
		Triggered:   d.Triggered,
		Suppressed:  suppressed,
	}
	if in, ok := m.cfg.Detector.(Instrumented); ok {
		snap := in.Internals()
		e.SampleSize = snap.SampleSize
		e.Statistic = snap.Statistic
	}
	return e
}

// ObserveDuration reports a duration observation in seconds, the natural
// unit for response times.
func (m *Monitor) ObserveDuration(d time.Duration) {
	m.Observe(d.Seconds())
}

// Reset restores the underlying detector to its initial state (for
// example after an externally initiated restart). Counters are kept.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.Detector.Reset()
	if jw := m.cfg.Journal; jw != nil && !m.epoch.IsZero() {
		jw.Reset(m.cfg.Now().Sub(m.epoch).Seconds())
	}
}

// Stats returns a snapshot of the monitor counters. The copy is taken
// under the monitor lock, so all fields — including LastTrigger — are
// mutually consistent: they describe one instant, even while other
// goroutines keep observing. The snapshot does not change after it is
// returned; call Stats again for fresh values.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Middleware wraps an http.Handler so every request's wall-clock service
// time is observed — the paper's core prescription: monitor the metric
// the customer experiences, not proxies like CPU or memory.
func (m *Monitor) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := m.cfg.Now()
		next.ServeHTTP(w, r)
		m.Observe(m.cfg.Now().Sub(start).Seconds())
	})
}
