package rejuv

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"rejuv/internal/core"
)

// Trigger describes one rejuvenation trigger raised by a Monitor.
type Trigger struct {
	// ID is the deterministic correlation id minted when the trigger
	// fired (core.TriggerID over the monitor's observation ordinal). The
	// same id appears on the journal's decision record and, when passed
	// to Actuator.ExecuteFor (or via Actuator.Trigger), on every record
	// of the actuation it provokes, so rejuvtrace can stitch the
	// observation -> decision -> actuation chain back together.
	ID uint64
	// Time is when the trigger fired.
	Time time.Time
	// Decision is the detector decision that fired it.
	Decision Decision
	// Observations is the total number of observations the monitor had
	// consumed when the trigger fired.
	Observations uint64
	// Suppressed reports that the trigger fell inside the cooldown
	// window and the callback was not invoked for it.
	Suppressed bool
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Detector makes the trigger decisions. Required. The monitor owns
	// it after construction: do not observe through it directly.
	Detector Detector
	// OnTrigger runs — synchronously, under the monitor's lock — when
	// the detector triggers outside the cooldown window. Required.
	// Keep it short: start the actual rejuvenation asynchronously.
	OnTrigger func(Trigger)
	// Cooldown suppresses further triggers for this long after one
	// fires, giving the rejuvenated system time to return to normal
	// before it can be condemned again. Zero disables suppression.
	Cooldown time.Duration
	// Now supplies the time; nil means time.Now. Tests inject a fake.
	Now func() time.Time
	// Collector, when non-nil, publishes every observation and decision
	// into a metrics Registry: counts, an observed-value histogram,
	// cooldown state and detector internals. See NewCollector.
	Collector *Collector
	// Trace, when non-nil, records every evaluated detector decision
	// (one TraceEntry per completed sample) into the ring buffer, so a
	// fired trigger can be explained after the fact. See NewTraceLog.
	Trace *TraceLog
	// Journal, when non-nil, records every observation and every
	// evaluated decision to the flight recorder, with timestamps in
	// seconds relative to the monitor's first observation. The journal
	// can later be replayed with ReplayJournal to verify the decision
	// stream. See NewJournalWriter.
	Journal *JournalWriter
	// Hygiene governs non-finite observations (NaN, ±Inf) before they
	// reach the detector. The zero value, HygieneReject, drops them and
	// counts them in MonitorStats.Rejected (and the collector's
	// rejuv_observations_rejected_total) — a single poisoned probe
	// reading must never corrupt detector state. HygieneClamp
	// substitutes the last admitted value instead; HygieneOff restores
	// the legacy pass-through.
	Hygiene Hygiene
	// MaxSilence arms the staleness watchdog: when CheckStall is called
	// after no observation has arrived for longer than this, the monitor
	// counts a stall, raises the rejuv_stream_stalled gauge and invokes
	// OnStall. A silent stream looks exactly like a healthy one to a
	// threshold detector, so silence needs its own alarm. Zero disables
	// the watchdog.
	MaxSilence time.Duration
	// OnStall, when non-nil, runs — under the monitor's lock — each time
	// the watchdog transitions into the stalled state. It receives the
	// length of the silence so far.
	OnStall func(silence time.Duration)
}

// MonitorStats is a snapshot of monitor counters, taken atomically
// under the monitor lock by Stats.
type MonitorStats struct {
	// Observations counts every value fed to Observe.
	Observations uint64
	// Triggers counts triggers delivered to OnTrigger.
	Triggers uint64
	// Suppressed counts triggers eaten by the cooldown window.
	Suppressed uint64
	// Rejected counts non-finite observations intercepted by the hygiene
	// policy (dropped under HygieneReject, substituted under
	// HygieneClamp). Intercepted observations still count in
	// Observations but never reach the detector.
	Rejected uint64
	// Stalls counts staleness-watchdog trips: transitions into the
	// stalled state detected by CheckStall.
	Stalls uint64
	// TriggerPanics counts panics recovered from the OnTrigger callback.
	// The monitor survives a panicking callback; the detector has
	// already been reset by its own trigger at that point.
	TriggerPanics uint64
	// Rebaselines counts workload-shift rebaselines committed by the
	// detector (when it re-estimates its baseline online; see
	// NewRebaseDetector). Always 0 for plain detectors.
	Rebaselines uint64
	// LastTrigger is the time of the most recent delivered (not
	// suppressed) trigger; it is the zero time before the first one.
	LastTrigger time.Time
}

// Monitor adapts a Detector for concurrent production use: any goroutine
// may report observations, and the trigger callback fires when the
// detector decides to rejuvenate, rate-limited by a cooldown.
//
// The guard layer — cooldown gate, staleness watchdog, hygiene memory —
// is the shared core machinery (internal/core Cooldown, Watchdog,
// HygieneState) that the fleet engine applies per stream; the Monitor
// is the one-stream instantiation of the same state machines.
type Monitor struct {
	cfg MonitorConfig

	mu    sync.Mutex
	stats MonitorStats // guarded by mu
	// epoch anchors journal timestamps at the first observation; the
	// zero value means no observation was journaled yet.
	epoch time.Time // guarded by mu
	// hygiene remembers the last admitted value, the substitute
	// HygieneClamp falls back to.
	hygiene core.HygieneState // guarded by mu
	// cool suppresses triggers inside the cooldown window of the last
	// delivered one.
	cool core.Cooldown // guarded by mu
	// dog is the staleness watchdog; arrival of any value, even a
	// rejected one, proves the stream is alive.
	dog core.Watchdog // guarded by mu
	// reb is non-nil when the detector re-estimates its baseline online;
	// lastReb is its rebaseline count after the previous observation, so
	// Observe can spot a commit the instant it happens.
	reb     core.Rebaseliner
	lastReb uint64 // guarded by mu
}

// NewMonitor validates the configuration and returns a monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Detector == nil {
		return nil, fmt.Errorf("rejuv: monitor needs a detector")
	}
	if cfg.OnTrigger == nil {
		return nil, fmt.Errorf("rejuv: monitor needs an OnTrigger callback")
	}
	if cfg.Cooldown < 0 {
		return nil, fmt.Errorf("rejuv: monitor cooldown must be non-negative, got %v", cfg.Cooldown)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Monitor{
		cfg:  cfg,
		cool: core.NewCooldown(cfg.Cooldown),
		dog:  core.NewWatchdog(cfg.MaxSilence),
	}
	m.reb, _ = cfg.Detector.(core.Rebaseliner)
	return m, nil
}

// Observe reports one observation of the monitored metric. Safe for
// concurrent use. Non-finite values are handled by the configured
// Hygiene policy before the detector sees them.
//
// This is the per-observation path the whole fleet pays for; everything
// reachable from here must stay allocation-free (see DESIGN §13).
//
//lint:hotpath
func (m *Monitor) Observe(x float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Observations++

	v, admitted, intercepted := m.hygiene.Admit(m.cfg.Hygiene, x)
	if intercepted {
		m.stats.Rejected++
	}
	if !admitted {
		m.observeRejected(x)
		return
	}

	d := m.cfg.Detector.Observe(v)
	rebased := false
	if m.reb != nil {
		if n := m.reb.Rebaselines(); n != m.lastReb {
			m.lastReb = n
			m.stats.Rebaselines++
			rebased = true
		}
	}
	if !d.Triggered && !rebased && !intercepted && !m.dog.Enabled() &&
		m.cfg.Collector == nil && m.cfg.Trace == nil && m.cfg.Journal == nil {
		return // the common un-instrumented fast path needs no clock
	}
	now := m.cfg.Now()
	m.feedWatchdog(now)
	inCool := m.cool.Active(now.UnixNano())
	suppressed := d.Triggered && inCool
	// Mint the correlation id for any triggering decision (suppressed
	// ones included, so the journal can still attribute them). Stream 0
	// is reserved for single-stream monitors; fleet streams start at 1.
	var tid uint64
	if d.Triggered {
		tid = core.TriggerID(0, m.stats.Observations)
		if suppressed {
			m.stats.Suppressed++
		} else {
			m.stats.Triggers++
			m.stats.LastTrigger = now
			// The cooldown window (if any) opens at this instant.
			m.cool.Open(now.UnixNano())
			inCool = m.cfg.Cooldown > 0
		}
	}
	if c := m.cfg.Collector; c != nil {
		c.observe(v, d, m.cfg.Detector, suppressed, inCool)
		if intercepted {
			c.rejected.Inc()
		}
	}
	if tl := m.cfg.Trace; tl != nil && d.Evaluated {
		tl.Record(m.traceEntry(now, v, d, suppressed, tid))
	}
	if jw := m.cfg.Journal; jw != nil {
		if m.epoch.IsZero() {
			m.epoch = now
		}
		t := now.Sub(m.epoch).Seconds()
		if intercepted {
			jw.Fault(t, hygieneClass(x), 0)
		}
		jw.Observe(t, v)
		if rebased {
			b := m.reb.CurrentBaseline()
			jw.Rebaseline(t, b.Mean, b.StdDev)
		}
		if d.Evaluated || d.Triggered {
			var in DetectorInternals
			if instr, ok := m.cfg.Detector.(Instrumented); ok {
				in = instr.Internals()
			}
			jw.Decision(t, d, in, suppressed, tid)
		}
	}
	if d.Triggered && !suppressed {
		m.deliver(Trigger{ID: tid, Time: now, Decision: d, Observations: m.stats.Observations})
	}
}

// observeRejected handles an observation dropped by the hygiene policy:
// it is counted and journaled as a fault but never reaches the
// detector, so the decision stream stays byte-identical to a clean run.
// Callers hold m.mu and have already counted the rejection.
//
//lint:holds mu
func (m *Monitor) observeRejected(x float64) {
	if !m.dog.Enabled() && m.cfg.Collector == nil && m.cfg.Journal == nil {
		return
	}
	now := m.cfg.Now()
	m.feedWatchdog(now)
	if c := m.cfg.Collector; c != nil {
		c.rejected.Inc()
	}
	if jw := m.cfg.Journal; jw != nil && !m.epoch.IsZero() {
		// The journal value is a placeholder: the class names the fault,
		// and the JSONL codec cannot carry the non-finite original.
		jw.Fault(now.Sub(m.epoch).Seconds(), hygieneClass(x), 0)
	}
}

// hygieneClass names the fault class of a non-finite observation for
// the journal.
func hygieneClass(x float64) string {
	switch {
	case math.IsNaN(x):
		return "nan"
	case math.IsInf(x, 1):
		return "+inf"
	default:
		return "-inf"
	}
}

// deliver invokes OnTrigger with panic isolation: a panicking callback
// is recovered and counted, never allowed to tear down the goroutine
// that happened to carry the triggering observation. Callers hold m.mu.
//
//lint:holds mu
func (m *Monitor) deliver(tr Trigger) {
	//lint:allow hotpath one closure per delivered trigger, not per observation
	defer func() {
		if r := recover(); r != nil {
			m.stats.TriggerPanics++
			if c := m.cfg.Collector; c != nil {
				c.triggerPanics.Inc()
			}
		}
	}()
	m.cfg.OnTrigger(tr)
}

// feedWatchdog records stream liveness and clears a latched stall.
// Callers hold m.mu.
//
//lint:holds mu
func (m *Monitor) feedWatchdog(now time.Time) {
	if m.dog.Feed(now.UnixNano()) {
		if c := m.cfg.Collector; c != nil {
			c.stalledGauge.Set(0)
		}
	}
}

// CheckStall evaluates the staleness watchdog and reports whether the
// observation stream is currently stalled: no Observe call for longer
// than MaxSilence. Call it periodically (a metrics scrape loop is a
// natural place). The first call arms the watchdog if no observation
// has arrived yet. On the transition into the stalled state the monitor
// counts a stall, sets the rejuv_stream_stalled gauge and invokes
// OnStall. With MaxSilence zero the watchdog is disabled and CheckStall
// always reports false.
func (m *Monitor) CheckStall() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	tripped, silence := m.dog.Check(m.cfg.Now().UnixNano())
	if tripped {
		m.stats.Stalls++
		if c := m.cfg.Collector; c != nil {
			c.stallsTotal.Inc()
			c.stalledGauge.Set(1)
		}
		if m.cfg.OnStall != nil {
			m.cfg.OnStall(silence)
		}
	}
	return m.dog.Stalled()
}

// traceEntry assembles the trace record for one evaluated decision,
// folding in detector internals when available. Callers hold m.mu.
//
//lint:holds mu
func (m *Monitor) traceEntry(now time.Time, x float64, d Decision, suppressed bool, tid uint64) TraceEntry {
	e := TraceEntry{
		Observation: m.stats.Observations,
		Time:        now,
		Value:       x,
		SampleMean:  d.SampleMean,
		Target:      d.Target,
		Level:       d.Level,
		Fill:        d.Fill,
		Triggered:   d.Triggered,
		Suppressed:  suppressed,
		TriggerID:   tid,
	}
	if in, ok := m.cfg.Detector.(Instrumented); ok {
		snap := in.Internals()
		e.SampleSize = snap.SampleSize
		e.Statistic = snap.Statistic
	}
	return e
}

// ObserveDuration reports a duration observation in seconds, the natural
// unit for response times.
func (m *Monitor) ObserveDuration(d time.Duration) {
	m.Observe(d.Seconds())
}

// Reset restores the underlying detector to its initial state (for
// example after an externally initiated restart). Counters are kept.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.Detector.Reset()
	if jw := m.cfg.Journal; jw != nil && !m.epoch.IsZero() {
		jw.Reset(m.cfg.Now().Sub(m.epoch).Seconds())
	}
}

// Stats returns a snapshot of the monitor counters. The copy is taken
// under the monitor lock, so all fields — including LastTrigger — are
// mutually consistent: they describe one instant, even while other
// goroutines keep observing. The snapshot does not change after it is
// returned; call Stats again for fresh values.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Middleware wraps an http.Handler so every request's wall-clock service
// time is observed — the paper's core prescription: monitor the metric
// the customer experiences, not proxies like CPU or memory.
func (m *Monitor) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := m.cfg.Now()
		next.ServeHTTP(w, r)
		m.Observe(m.cfg.Now().Sub(start).Seconds())
	})
}
